//! The daemon: accept loop, connection workers, job workers, lifecycle.
//!
//! ## Threading model
//!
//! One accept thread, a small fixed pool of *connection workers*, and
//! [`QueueConfig::workers`](crate::queue::QueueConfig) job workers each
//! owning a warm [`VthreadPool`].
//!
//! The accept thread only accepts: each new connection is handed
//! round-robin to a connection worker's mailbox (or refused with a single
//! ERROR frame once [`ServeOptions::max_connections`] are live — explicit
//! backpressure, counted in [`Metrics::connections_refused`]). Each
//! connection worker multiplexes its share of non-blocking sockets with
//! [`crate::netpoll`] (`poll(2)`): it reads whatever bytes are ready,
//! walks complete frames out of a per-connection buffer with
//! [`AnyFrame::parse`], dispatches them inline, and queues responses into
//! a per-connection write buffer flushed as the socket accepts them. A
//! connection may pipeline many tagged v2 requests; responses complete in
//! dispatch order, which is *not* arrival order for streaming submits —
//! a STATUS poll is answered while a SUBMIT's chunks are still arriving.
//! Two backpressure bounds protect the worker: a connection whose
//! unflushed-response window fills ([`ServeOptions::inflight_window`])
//! stops being read until its client drains responses
//! ([`Metrics::window_stalls`]), and streamed submits spill to a store
//! staging file chunk-by-chunk ([`Store::put_streaming`]) so per-connection
//! memory is bounded by one chunk, not one sketch.
//!
//! Connections are isolated per the [`crate::proto`] severity contract: a
//! framing error (bad magic/version, oversized length) costs that one
//! connection; a payload error (unknown kind, malformed fields) costs only
//! that one request — the connection keeps serving, which pipelining
//! requires. Both are counted in [`Metrics::frames_rejected`]; neither
//! ever touches the accept loop.
//!
//! The PR 5 model — one OS thread per live connection, blocking
//! one-frame-at-a-time request/response, v1 only — is retained as
//! [`FrontendKind::Legacy`], both as the baseline the E18 front-end
//! benchmark measures against and as the historically simplest reference
//! implementation of the protocol.
//!
//! ## Hot-path economics
//!
//! Two costs dominate a loaded daemon and both are amortized here rather
//! than paid per request. Every state transition is journaled, but the
//! journal group-commits ([`crate::journal::GroupCommit`], tuned by
//! `--journal-batch` / `--journal-batch-usecs`): concurrent submits from
//! the connection workers land in one cohort and share a single
//! `fdatasync`, with no record acknowledged before its cohort is on disk.
//! Every execution needs a decoded sketch plus its replay index, but
//! repeat executions of a digest are served from the queue's
//! byte-budgeted decode cache ([`crate::cache::SketchCache`], tuned by
//! `--sketch-cache-bytes`) instead of re-reading and re-indexing from the
//! store.
//!
//! Shutdown — whether from [`Server::shutdown`] or a SHUTDOWN frame — is a
//! drain: the queue stops accepting, running jobs finish, queued jobs stay
//! journaled for the next start, and [`Server::join`] returns once every
//! worker is idle.

use crate::client::{DEFAULT_CONNECT_ATTEMPTS, DEFAULT_CONNECT_BACKOFF};
use crate::cluster::{token_matches, Cluster, ClusterConfig};
use crate::digest::Digest;
use crate::metrics::Metrics;
use crate::proto::{AnyFrame, Frame, Request, Response, Severity, DEFAULT_MAX_FRAME};
use crate::queue::{JobQueue, JobStatus, QueueConfig};
use crate::store::{Store, StreamingPut};
use crate::{netpoll, proto};
use pres_apps::registry::all_bugs;
use pres_core::explore::ExploreConfig;
use pres_tvm::pool::VthreadPool;
use pres_tvm::sync::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Which connection-handling model the daemon runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontendKind {
    /// Sharded connection workers multiplexing non-blocking sockets:
    /// pipelined tagged requests, streaming submits, bounded threads.
    #[default]
    Sharded,
    /// The PR 5 model: one blocking OS thread per connection, v1 frames
    /// only. Kept as the E18 baseline.
    Legacy,
}

/// How many streaming submits one connection may hold open at once. A
/// well-behaved client streams a handful concurrently; an adversarial one
/// must not pin unbounded staging files.
const MAX_STREAMS_PER_CONN: usize = 16;

/// Per-connection bytes read per poll round: large enough to swallow a
/// whole default chunk in one pass, small enough to keep the worker fair
/// across its connections.
const READ_BUDGET_PER_ROUND: usize = 256 << 10;

/// How long the poll loop sleeps when nothing is ready — also the bound on
/// how stale a worker's view of its mailbox and the shutdown flag can be.
const POLL_TICK: Duration = Duration::from_millis(5);

/// How long a draining worker keeps flushing pending responses before
/// dropping its connections.
const DRAIN_FLUSH_DEADLINE: Duration = Duration::from_secs(2);

/// How long the stealer thread sleeps between raids while every peer's
/// ready queue is empty (or this node has local work of its own).
const STEAL_IDLE_TICK: Duration = Duration::from_millis(50);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (`127.0.0.1:7557`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Root directory for the store and journal.
    pub data_dir: PathBuf,
    /// Queue tuning (worker count, budgets, retries).
    pub queue: QueueConfig,
    /// Cap on accepted frame payloads, and on the cumulative size of one
    /// streamed submit.
    pub max_frame: u32,
    /// Per-connection idle timeout: a connection silent this long is
    /// dropped, bounding the cost of abandoned clients.
    pub read_timeout: Duration,
    /// How often the metrics log line is emitted (`None` = never).
    pub log_interval: Option<Duration>,
    /// Connection-handling model (sharded workers unless configured
    /// otherwise).
    pub frontend: FrontendKind,
    /// Connection-worker threads for the sharded front end.
    pub conn_workers: usize,
    /// Live-connection cap for the sharded front end; connections past it
    /// are answered with one ERROR frame and closed.
    pub max_connections: usize,
    /// Per-connection pipelining window: once this many responses are
    /// queued unflushed, the connection is not read again until the
    /// client drains them.
    pub inflight_window: usize,
    /// The other cluster nodes' advertised addresses (`--peer`, repeat
    /// per node). Empty = standalone daemon, no cluster layer at all.
    pub peers: Vec<String>,
    /// The address peers dial *this* node at — its ring identity. Must
    /// match what the peers pass as `--peer` byte-for-byte. Defaults to
    /// the bound address, which is only right when every node binds a
    /// routable address (loopback clusters in tests do).
    pub advertise: Option<String>,
    /// Shared secret: when set, every connection (client or peer) must
    /// open with a HELLO carrying it.
    pub auth_token: Option<String>,
    /// Owners per object (clamped to the node count). 2 survives one
    /// node loss.
    pub replicas: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7557".into(),
            data_dir: PathBuf::from("pres-svc-data"),
            queue: QueueConfig::default(),
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_secs(10),
            log_interval: Some(Duration::from_secs(10)),
            frontend: FrontendKind::Sharded,
            conn_workers: 4,
            max_connections: 4096,
            inflight_window: 128,
            peers: Vec::new(),
            advertise: None,
            auth_token: None,
            replicas: 2,
        }
    }
}

/// Everything a connection worker needs, shared across the front end.
struct Frontend {
    queue: Arc<JobQueue>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    /// The daemon's own listen address — the SHUTDOWN handler connects to
    /// it to kick the accept thread out of `accept(2)`.
    listen_addr: SocketAddr,
    max_frame: u32,
    read_timeout: Duration,
    inflight_window: usize,
    /// The configured shared secret, raw. `Some` ⇒ every connection must
    /// HELLO before anything else.
    auth_token: Option<Vec<u8>>,
    /// The cluster view, when this daemon was started with `--peer`.
    cluster: Option<Arc<Cluster>>,
}

type Mailbox = Arc<Mutex<Vec<TcpStream>>>;

/// A running daemon.
pub struct Server {
    addr: SocketAddr,
    queue: Arc<JobQueue>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conn_workers: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    logger: Option<JoinHandle<()>>,
    cluster: Option<Arc<Cluster>>,
    stealer: Option<JoinHandle<()>>,
    repairer: Option<JoinHandle<()>>,
}

impl Server {
    /// Opens the store and journal under `data_dir`, replays unfinished
    /// jobs, binds the listener, and starts accepting.
    pub fn start(opts: ServeOptions) -> io::Result<Server> {
        let metrics = Arc::new(Metrics::new());
        // Bind before opening the store: the resolved address (port 0
        // becomes concrete here) is this node's default ring identity.
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let (store, _) = Store::open(opts.data_dir.join("store"))?;
        let cluster = if opts.peers.is_empty() {
            None
        } else {
            let self_id = opts.advertise.clone().unwrap_or_else(|| addr.to_string());
            Some(Arc::new(Cluster::new(
                ClusterConfig {
                    self_id,
                    peers: opts.peers.clone(),
                    replicas: opts.replicas,
                    auth_token: opts.auth_token.clone(),
                    connect_attempts: DEFAULT_CONNECT_ATTEMPTS,
                    connect_backoff: DEFAULT_CONNECT_BACKOFF,
                },
                Arc::clone(&metrics),
            )))
        };
        if let Some(cluster) = &cluster {
            store.attach_cluster(Arc::clone(cluster));
        }
        // Self-verify the whole store before serving: any object that
        // rotted on disk is quarantined now, so every post-start read
        // either verifies or is a clean miss (a resubmission — or, in a
        // cluster, the startup repair pass — repairs it). fsck reads are
        // strictly local, so this never routes to peers.
        let fsck = store.fsck()?;
        if fsck.quarantined > 0 {
            eprintln!(
                "pres-svc: startup fsck quarantined {} corrupt object(s) ({} verified)",
                fsck.quarantined, fsck.verified
            );
        }
        let queue = Arc::new(JobQueue::open(
            opts.data_dir.join("journal.log"),
            Arc::new(store),
            Arc::clone(&metrics),
            opts.queue.clone(),
        )?);
        let shutdown = Arc::new(AtomicBool::new(false));

        let workers: Vec<JoinHandle<()>> = (0..opts.queue.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                thread::Builder::new()
                    .name(format!("svc-job-{i}"))
                    .spawn(move || {
                        // One warm pool per worker, reused across jobs:
                        // steady-state job turnover spawns no OS threads.
                        let pool = VthreadPool::new(ExploreConfig::default().pool_width);
                        queue.work(&pool);
                    })
                    .expect("spawn job worker")
            })
            .collect();

        let frontend = Arc::new(Frontend {
            queue: Arc::clone(&queue),
            metrics: Arc::clone(&metrics),
            shutdown: Arc::clone(&shutdown),
            listen_addr: addr,
            max_frame: opts.max_frame,
            read_timeout: opts.read_timeout,
            inflight_window: opts.inflight_window.max(1),
            auth_token: opts.auth_token.as_ref().map(|t| t.as_bytes().to_vec()),
            cluster: cluster.clone(),
        });

        let (accept, conn_workers) = match opts.frontend {
            FrontendKind::Sharded => {
                let n = opts.conn_workers.max(1);
                let mailboxes: Vec<Mailbox> =
                    (0..n).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
                let conn_workers: Vec<JoinHandle<()>> = mailboxes
                    .iter()
                    .enumerate()
                    .map(|(i, mailbox)| {
                        let frontend = Arc::clone(&frontend);
                        let mailbox = Arc::clone(mailbox);
                        thread::Builder::new()
                            .name(format!("svc-conn-{i}"))
                            .spawn(move || conn_worker(&frontend, &mailbox))
                            .expect("spawn connection worker")
                    })
                    .collect();
                let accept = {
                    let frontend = Arc::clone(&frontend);
                    let max_connections = opts.max_connections.max(1);
                    thread::Builder::new()
                        .name("svc-accept".into())
                        .spawn(move || {
                            let mut next = 0usize;
                            for conn in listener.incoming() {
                                if frontend.shutdown.load(Ordering::SeqCst) {
                                    break;
                                }
                                let Ok(stream) = conn else { continue };
                                let live = frontend
                                    .metrics
                                    .connections_live
                                    .load(Ordering::Relaxed);
                                if live >= max_connections as u64 {
                                    refuse_connection(stream, &frontend.metrics, max_connections);
                                    continue;
                                }
                                frontend.metrics.connections.fetch_add(1, Ordering::Relaxed);
                                frontend
                                    .metrics
                                    .connections_live
                                    .fetch_add(1, Ordering::Relaxed);
                                mailboxes[next].lock().push(stream);
                                next = (next + 1) % mailboxes.len();
                            }
                        })
                        .expect("spawn accept loop")
                };
                (accept, conn_workers)
            }
            FrontendKind::Legacy => {
                let accept = {
                    let frontend = Arc::clone(&frontend);
                    thread::Builder::new()
                        .name("svc-accept".into())
                        .spawn(move || {
                            for conn in listener.incoming() {
                                if frontend.shutdown.load(Ordering::SeqCst) {
                                    break;
                                }
                                let Ok(stream) = conn else { continue };
                                frontend.metrics.connections.fetch_add(1, Ordering::Relaxed);
                                frontend
                                    .metrics
                                    .connections_live
                                    .fetch_add(1, Ordering::Relaxed);
                                let frontend = Arc::clone(&frontend);
                                let _ = thread::Builder::new().name("svc-conn".into()).spawn(
                                    move || {
                                        serve_connection(stream, &frontend);
                                        frontend
                                            .metrics
                                            .connections_live
                                            .fetch_sub(1, Ordering::Relaxed);
                                    },
                                );
                            }
                        })
                        .expect("spawn accept loop")
                };
                (accept, Vec::new())
            }
        };

        let logger = opts.log_interval.map(|interval| {
            let metrics = Arc::clone(&metrics);
            let shutdown = Arc::clone(&shutdown);
            thread::Builder::new()
                .name("svc-log".into())
                .spawn(move || {
                    let tick = Duration::from_millis(100);
                    let mut since_log = Duration::ZERO;
                    while !shutdown.load(Ordering::SeqCst) {
                        thread::sleep(tick);
                        since_log += tick;
                        if since_log >= interval {
                            eprintln!("{}", metrics.snapshot().log_line());
                            since_log = Duration::ZERO;
                        }
                    }
                })
                .expect("spawn metrics logger")
        });

        // The stealer: while this node is strictly idle, raid peers'
        // ready queues one job at a time, execute with the origin's
        // retry counter (same seed-offset rule ⇒ same certificate), and
        // report the terminal status back. Also the reaper driving
        // expired steal leases back into our own ready queue.
        let stealer = cluster.as_ref().map(|cluster| {
            let cluster = Arc::clone(cluster);
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            thread::Builder::new()
                .name("svc-steal".into())
                .spawn(move || {
                    let pool = VthreadPool::new(ExploreConfig::default().pool_width);
                    let mut next_peer = 0usize;
                    while !shutdown.load(Ordering::SeqCst) {
                        queue.reap_stolen();
                        let mut stole = false;
                        if queue.wants_work() {
                            let peers = cluster.peer_ids();
                            for i in 0..peers.len() {
                                let peer = &peers[(next_peer + i) % peers.len()];
                                let Ok(jobs) = cluster.steal_from(peer, 1) else {
                                    continue;
                                };
                                if jobs.is_empty() {
                                    continue;
                                }
                                // Rotate the raid order so a hot peer
                                // does not monopolize the thief.
                                next_peer = (next_peer + i + 1) % peers.len();
                                stole = true;
                                for pj in jobs {
                                    let status = queue.execute_stolen(
                                        &pj.bug, pj.sketch, pj.retries, &pool,
                                    );
                                    // A failed report is fine: the
                                    // origin's lease re-queues the job.
                                    let _ = cluster.report_done(peer, pj.job, status);
                                }
                                break;
                            }
                        }
                        if !stole {
                            thread::sleep(STEAL_IDLE_TICK);
                        }
                    }
                })
                .expect("spawn stealer")
        });

        // Startup repair: restore the replication invariant in the
        // background — pull objects this node owns but lacks, push local
        // objects to remote owners that lack them. One pass; `pres fsck
        // --peer` is the operator's on-demand rerun.
        let repairer = cluster.as_ref().map(|cluster| {
            let cluster = Arc::clone(cluster);
            let queue = Arc::clone(&queue);
            thread::Builder::new()
                .name("svc-repair".into())
                .spawn(move || match cluster.repair(queue.store()) {
                    Ok(report) => {
                        if report.pulled + report.pushed > 0 || !report.healthy() {
                            eprintln!(
                                "pres-svc: startup repair pulled {} pushed {} \
                                 ({} under-replicated, {} peer(s) unreachable)",
                                report.pulled,
                                report.pushed,
                                report.under_replicated,
                                report.peers_unreachable
                            );
                        }
                    }
                    Err(e) => eprintln!("pres-svc: startup repair failed: {e}"),
                })
                .expect("spawn repairer")
        });

        Ok(Server {
            addr,
            queue,
            metrics,
            shutdown,
            accept: Some(accept),
            conn_workers,
            workers,
            logger,
            cluster,
            stealer,
            repairer,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics block.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The queue (for in-process inspection in tests and benches).
    pub fn queue(&self) -> &Arc<JobQueue> {
        &self.queue
    }

    /// The cluster view (`None` for a standalone daemon).
    pub fn cluster(&self) -> Option<&Arc<Cluster>> {
        self.cluster.as_ref()
    }

    /// Initiates the drain-and-exit sequence (idempotent).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.drain();
        // The accept loop blocks in `accept(2)`; a throwaway local
        // connection is the portable way to kick it loose.
        let _ = TcpStream::connect(self.addr);
    }

    /// Waits for the drain to complete: running jobs finished, accept loop
    /// and workers exited.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.conn_workers.drain(..) {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.logger.take() {
            let _ = h.join();
        }
        if let Some(h) = self.stealer.take() {
            let _ = h.join();
        }
        if let Some(h) = self.repairer.take() {
            let _ = h.join();
        }
        self.queue.await_drained();
    }
}

/// Answers a connection refused at the cap with one best-effort ERROR
/// frame, then drops it.
fn refuse_connection(mut stream: TcpStream, metrics: &Metrics, max_connections: usize) {
    metrics.connections_refused.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let resp = Response::Error {
        message: format!("connection limit reached ({max_connections} live); retry shortly"),
    };
    if let Ok(frame) = resp.to_frame() {
        let _ = frame.write_to(&mut stream);
    }
}

#[cfg(unix)]
fn raw_fd(stream: &TcpStream) -> i32 {
    use std::os::unix::io::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd(_stream: &TcpStream) -> i32 {
    0
}

/// What an inbound byte stream becomes when its END frame arrives.
enum StreamKind {
    /// A client's streaming submit: verify the bug id, enqueue a job.
    Submit { bug: String },
    /// A peer's replication push: verify the advertised digest, publish
    /// locally only — a replica write must never fan out again.
    PeerPut { expect: Digest },
}

/// One in-progress inbound stream (streaming submit or peer put), keyed
/// by its tag on the connection.
struct InboundStream<'a> {
    kind: StreamKind,
    put: StreamingPut<'a>,
}

/// What a tag maps to between SUBMIT_BEGIN and SUBMIT_END.
///
/// A stream that failed (unknown bug, store error, cap overflow) is not
/// simply removed: the client pipelined its chunks before it could see
/// our error, so the tag is left as a tombstone that swallows the rest of
/// the stream silently. The client gets exactly one error — on the frame
/// that failed — instead of one per in-flight chunk, and the connection
/// stays in sync for whatever it sends next.
enum StreamSlot<'a> {
    Open(InboundStream<'a>),
    Poisoned,
}

/// One multiplexed connection's state.
struct Conn<'a> {
    stream: TcpStream,
    /// Unparsed inbound bytes (at most one partial frame plus whatever
    /// arrived behind it this round).
    read_buf: Vec<u8>,
    /// Encoded responses not yet accepted by the socket.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Responses queued since the write buffer last drained — the
    /// pipelining window.
    pending_responses: usize,
    /// Reads paused until the client drains our responses.
    stalled: bool,
    /// Flush what is queued, then close (framing error or shutdown).
    close_after_flush: bool,
    /// Dead now: transport error or EOF.
    dead: bool,
    last_activity: Instant,
    /// Open streaming submits by tag (or their failure tombstones).
    streams: HashMap<u32, StreamSlot<'a>>,
    /// Whether this connection has presented the shared secret; only
    /// consulted when the daemon has one configured.
    authed: bool,
}

impl<'a> Conn<'a> {
    fn new(stream: TcpStream) -> Conn<'a> {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            pending_responses: 0,
            stalled: false,
            close_after_flush: false,
            dead: false,
            last_activity: Instant::now(),
            streams: HashMap::new(),
            authed: false,
        }
    }

    fn wants_read(&self) -> bool {
        !self.dead && !self.stalled && !self.close_after_flush
    }

    fn wants_write(&self) -> bool {
        !self.dead && self.write_pos < self.write_buf.len()
    }

    /// Queues one response, encoded in the same frame version as the
    /// request it answers (`tag` ignored for v1). A response too large for
    /// the u32 frame length degrades to an ERROR frame rather than killing
    /// the connection with nothing on the wire.
    fn enqueue_response(&mut self, v2: bool, tag: u32, response: &Response) {
        let bytes = encode_response(v2, tag, response);
        self.write_buf.extend_from_slice(&bytes);
        self.pending_responses += 1;
    }

    /// Non-blocking flush. Returns `Ok(true)` when the buffer drained.
    fn flush(&mut self) -> io::Result<bool> {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.write_pos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.write_buf.clear();
        self.write_pos = 0;
        self.pending_responses = 0;
        Ok(true)
    }

    /// Non-blocking read of up to the per-round budget. Returns the byte
    /// count (0 = nothing ready); EOF surfaces as an error.
    fn read_some(&mut self, scratch: &mut [u8]) -> io::Result<usize> {
        let mut total = 0;
        while total < READ_BUDGET_PER_ROUND {
            match self.stream.read(scratch) {
                Ok(0) => {
                    return if total > 0 {
                        Ok(total)
                    } else {
                        Err(io::ErrorKind::UnexpectedEof.into())
                    }
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&scratch[..n]);
                    total += n;
                    self.last_activity = Instant::now();
                    if n < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }
}

/// Encodes one response in the requested frame version, degrading
/// oversized payloads to an ERROR frame.
fn encode_response(v2: bool, tag: u32, response: &Response) -> Vec<u8> {
    let fallback = |e: proto::ProtoError| Response::Error {
        message: e.to_string(),
    };
    if v2 {
        match response.to_frame2(tag) {
            Ok(f) => f.encode(),
            Err(e) => fallback(e)
                .to_frame2(tag)
                .expect("an error frame is always small enough to encode")
                .encode(),
        }
    } else {
        match response.to_frame() {
            Ok(f) => f.encode(),
            Err(e) => fallback(e)
                .to_frame()
                .expect("an error frame is always small enough to encode")
                .encode(),
        }
    }
}

/// The sharded front end's worker loop: adopt mailbox connections, poll,
/// flush, read, parse, dispatch — until shutdown.
fn conn_worker(frontend: &Frontend, mailbox: &Mailbox) {
    let store: &Store = frontend.queue.store();
    let mut conns: Vec<Conn<'_>> = Vec::new();
    let mut scratch = vec![0u8; 64 << 10];
    let mut drain_since: Option<Instant> = None;

    loop {
        // Adopt newly accepted connections.
        for stream in mailbox.lock().drain(..) {
            if stream.set_nonblocking(true).is_err() {
                frontend
                    .metrics
                    .connections_live
                    .fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            let _ = stream.set_nodelay(true);
            conns.push(Conn::new(stream));
        }

        let draining = frontend.shutdown.load(Ordering::SeqCst);
        if draining {
            let since = *drain_since.get_or_insert_with(Instant::now);
            let done = conns.iter().all(|c| !c.wants_write());
            if done || since.elapsed() > DRAIN_FLUSH_DEADLINE {
                break;
            }
        }

        // Poll every socket for the readiness we currently want.
        let mut fds: Vec<netpoll::PollFd> = conns
            .iter()
            .map(|c| {
                let mut events = 0i16;
                if c.wants_read() && !draining {
                    events |= netpoll::POLLIN;
                }
                if c.wants_write() {
                    events |= netpoll::POLLOUT;
                }
                netpoll::PollFd::new(raw_fd(&c.stream), events)
            })
            .collect();
        let _ = netpoll::wait(&mut fds, POLL_TICK);

        for (conn, fd) in conns.iter_mut().zip(&fds) {
            // Flush first: draining the write buffer is what un-stalls a
            // windowed connection and completes a close_after_flush.
            if conn.wants_write() && fd.writable() {
                match conn.flush() {
                    Ok(true) => {
                        conn.stalled = false;
                        if conn.close_after_flush {
                            conn.dead = true;
                        }
                    }
                    Ok(false) => {}
                    Err(_) => conn.dead = true,
                }
            } else if conn.close_after_flush && !conn.wants_write() {
                conn.dead = true;
            }

            if conn.wants_read()
                && !draining
                && fd.readable()
                && conn.read_some(&mut scratch).is_err()
            {
                // EOF or transport error. Anything already queued has
                // lost its reader; just drop.
                conn.dead = true;
            }
            // Parse whatever is buffered — including frames left behind by
            // an earlier stall, which no new read will ever re-deliver.
            if !conn.dead && !draining && !conn.stalled && !conn.read_buf.is_empty() {
                drive_parse(frontend, store, conn);
            }

            if !conn.dead && conn.last_activity.elapsed() > frontend.read_timeout {
                // Idle cull: abandoned clients (and their open streaming
                // submits — StreamingPut's Drop removes the staging file).
                conn.dead = true;
            }
        }

        let before = conns.len();
        conns.retain(|c| !c.dead);
        let closed = before - conns.len();
        if closed > 0 {
            frontend
                .metrics
                .connections_live
                .fetch_sub(closed as u64, Ordering::Relaxed);
        }
    }

    // Connections dropped at exit are closed, not gracefully flushed; the
    // gauge must not leak them.
    if !conns.is_empty() {
        frontend
            .metrics
            .connections_live
            .fetch_sub(conns.len() as u64, Ordering::Relaxed);
    }
}

/// Walks every complete frame out of `conn.read_buf`, dispatching each.
fn drive_parse<'a>(frontend: &Frontend, store: &'a Store, conn: &mut Conn<'a>) {
    let mut consumed = 0;
    loop {
        if conn.close_after_flush || conn.dead {
            break;
        }
        // Pipelining window: stop reading new requests until the client
        // drains the responses it already has.
        if conn.pending_responses >= frontend.inflight_window && conn.wants_write() {
            if !conn.stalled {
                conn.stalled = true;
                frontend.metrics.window_stalls.fetch_add(1, Ordering::Relaxed);
            }
            break;
        }
        match AnyFrame::parse(&conn.read_buf[consumed..], frontend.max_frame) {
            Ok(None) => break,
            Ok(Some((frame, used))) => {
                consumed += used;
                dispatch(frontend, store, conn, frame);
            }
            Err(e) => {
                // Framing is gone (parse never yields payload-severity
                // errors, but route through the contract anyway).
                frontend
                    .metrics
                    .frames_rejected
                    .fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    message: e.to_string(),
                };
                conn.enqueue_response(false, 0, &resp);
                match e.severity() {
                    Severity::Framing => conn.close_after_flush = true,
                    Severity::Payload => {}
                }
                break;
            }
        }
    }
    conn.read_buf.drain(..consumed);
}

/// Dispatches one decoded frame on one connection.
fn dispatch<'a>(frontend: &Frontend, store: &'a Store, conn: &mut Conn<'a>, frame: AnyFrame) {
    let v2 = matches!(frame, AnyFrame::V2(_));
    let tag = frame.tag();
    let request = match Request::from_any(&frame) {
        Ok(r) => r,
        Err(e) => {
            // Payload-severity by construction (framing errors never make
            // it out of the parser): answer and keep the connection.
            frontend
                .metrics
                .frames_rejected
                .fetch_add(1, Ordering::Relaxed);
            let resp = Response::Error {
                message: e.to_string(),
            };
            conn.enqueue_response(v2, tag, &resp);
            if e.severity() == Severity::Framing {
                conn.close_after_flush = true;
            }
            return;
        }
    };
    let err = |message: String| Response::Error { message };
    // HELLO is answered before the auth gate — it *is* the auth gate.
    if let Request::Hello { token } = &request {
        let ok = match &frontend.auth_token {
            Some(secret) => token_matches(secret, token),
            None => true,
        };
        if ok {
            conn.authed = true;
            conn.enqueue_response(v2, tag, &Response::HelloOk);
        } else {
            frontend
                .metrics
                .frames_rejected
                .fetch_add(1, Ordering::Relaxed);
            conn.enqueue_response(v2, tag, &err("authentication failed".into()));
            conn.close_after_flush = true;
        }
        return;
    }
    if frontend.auth_token.is_some() && !conn.authed {
        frontend
            .metrics
            .frames_rejected
            .fetch_add(1, Ordering::Relaxed);
        conn.enqueue_response(v2, tag, &err("authentication required: send HELLO first".into()));
        conn.close_after_flush = true;
        return;
    }
    match request {
        Request::SubmitBegin { bug } if v2 => {
            if conn.streams.contains_key(&tag) {
                conn.enqueue_response(v2, tag, &err(format!("stream tag {tag} already open")));
                return;
            }
            if conn.streams.len() >= MAX_STREAMS_PER_CONN {
                // No tombstone here: tombstones live in the same map, so
                // minting one would defeat the cap it enforces.
                conn.enqueue_response(
                    v2,
                    tag,
                    &err(format!(
                        "too many open streams on this connection (max {MAX_STREAMS_PER_CONN})"
                    )),
                );
                return;
            }
            if !all_bugs().iter().any(|b| b.id == bug) {
                conn.enqueue_response(v2, tag, &err(format!("unknown bug '{bug}' — see `pres list`")));
                conn.streams.insert(tag, StreamSlot::Poisoned);
                return;
            }
            match store.put_streaming() {
                Ok(put) => {
                    conn.streams.insert(
                        tag,
                        StreamSlot::Open(InboundStream {
                            kind: StreamKind::Submit { bug },
                            put,
                        }),
                    );
                    // BEGIN is not answered; the response rides SUBMIT_END.
                }
                Err(e) => {
                    conn.enqueue_response(v2, tag, &err(format!("store ingest failed: {e}")));
                    conn.streams.insert(tag, StreamSlot::Poisoned);
                }
            }
        }
        Request::PeerPutBegin { digest } if v2 => {
            if conn.streams.contains_key(&tag) {
                conn.enqueue_response(v2, tag, &err(format!("stream tag {tag} already open")));
                return;
            }
            if conn.streams.len() >= MAX_STREAMS_PER_CONN {
                conn.enqueue_response(
                    v2,
                    tag,
                    &err(format!(
                        "too many open streams on this connection (max {MAX_STREAMS_PER_CONN})"
                    )),
                );
                return;
            }
            match store.put_streaming() {
                Ok(put) => {
                    conn.streams.insert(
                        tag,
                        StreamSlot::Open(InboundStream {
                            kind: StreamKind::PeerPut { expect: digest },
                            put,
                        }),
                    );
                    // BEGIN is not answered; the response rides the
                    // shared SUBMIT_END on this tag.
                }
                Err(e) => {
                    conn.enqueue_response(v2, tag, &err(format!("store ingest failed: {e}")));
                    conn.streams.insert(tag, StreamSlot::Poisoned);
                }
            }
        }
        Request::SubmitChunk { data } if v2 => {
            let Some(slot) = conn.streams.get_mut(&tag) else {
                conn.enqueue_response(v2, tag, &err(format!("no open stream for tag {tag}")));
                return;
            };
            let StreamSlot::Open(stream) = slot else {
                // The error already went out when the stream failed; the
                // client pipelined this chunk before seeing it.
                return;
            };
            if stream.put.written() + data.len() as u64 > frontend.max_frame as u64 {
                *slot = StreamSlot::Poisoned;
                conn.enqueue_response(
                    v2,
                    tag,
                    &err(format!(
                        "streamed submit exceeds the {} byte cap",
                        frontend.max_frame
                    )),
                );
                return;
            }
            if let Err(e) = stream.put.write(&data) {
                *slot = StreamSlot::Poisoned;
                conn.enqueue_response(v2, tag, &err(format!("store ingest failed: {e}")));
            }
            // Chunks are not answered.
        }
        Request::SubmitEnd if v2 => {
            let stream = match conn.streams.remove(&tag) {
                Some(StreamSlot::Open(stream)) => stream,
                // END of a failed stream: the tombstone absorbed it and
                // its one error response is already on the wire.
                Some(StreamSlot::Poisoned) => return,
                None => {
                    conn.enqueue_response(v2, tag, &err(format!("no open stream for tag {tag}")));
                    return;
                }
            };
            let resp = match stream.kind {
                StreamKind::Submit { bug } => {
                    frontend.metrics.submits.fetch_add(1, Ordering::Relaxed);
                    frontend
                        .metrics
                        .streaming_submits
                        .fetch_add(1, Ordering::Relaxed);
                    match stream.put.finish() {
                        Ok((digest, fresh_object)) => match frontend.queue.submit(&bug, digest) {
                            Ok((job, fresh_job)) => Response::Submitted {
                                job,
                                sketch: digest,
                                fresh_object,
                                fresh_job,
                            },
                            Err(e) => err(e.to_string()),
                        },
                        Err(e) => err(format!("store ingest failed: {e}")),
                    }
                }
                StreamKind::PeerPut { expect } => {
                    let bytes = stream.put.written();
                    // `finish_local`, never `finish`: the sender is the
                    // object's origin and pushes to every owner itself;
                    // fanning out again here would echo objects around
                    // the ring.
                    match stream.put.finish_local() {
                        Ok((digest, fresh)) if digest == expect => {
                            frontend
                                .metrics
                                .peer_bytes_in
                                .fetch_add(bytes, Ordering::Relaxed);
                            Response::PeerPut { digest, fresh }
                        }
                        Ok((digest, _)) => err(format!(
                            "peer put advertised {expect} but the bytes hash to {digest}"
                        )),
                        Err(e) => err(format!("store ingest failed: {e}")),
                    }
                }
            };
            conn.enqueue_response(v2, tag, &resp);
        }
        request => {
            let is_shutdown = matches!(request, Request::Shutdown);
            let response = handle(request, frontend);
            conn.enqueue_response(v2, tag, &response);
            if is_shutdown {
                conn.close_after_flush = true;
                // Kick the accept loop out of `accept(2)` so it observes
                // the flag.
                let _ = TcpStream::connect(frontend.listen_addr);
            }
        }
    }
}

/// The legacy front end's per-connection loop: blocking, v1 frames only,
/// one request at a time. Framing errors close the connection after one
/// ERROR frame; payload errors answer and keep serving (the severity
/// contract in [`crate::proto`]).
fn serve_connection(mut stream: TcpStream, frontend: &Frontend) {
    let _ = stream.set_read_timeout(Some(frontend.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut authed = false;
    loop {
        let frame = match Frame::read_from(&mut stream, frontend.max_frame) {
            // Transport gone or idle past the timeout: just close.
            Err(_) => return,
            Ok(Err(proto_err)) => {
                frontend
                    .metrics
                    .frames_rejected
                    .fetch_add(1, Ordering::Relaxed);
                let sent = write_response(
                    &mut stream,
                    &Response::Error {
                        message: proto_err.to_string(),
                    },
                );
                match proto_err.severity() {
                    Severity::Framing => return,
                    Severity::Payload if sent.is_ok() => continue,
                    Severity::Payload => return,
                }
            }
            Ok(Ok(frame)) => frame,
        };
        let request = match Request::from_frame(&frame) {
            Ok(r) => r,
            Err(proto_err) => {
                frontend
                    .metrics
                    .frames_rejected
                    .fetch_add(1, Ordering::Relaxed);
                let sent = write_response(
                    &mut stream,
                    &Response::Error {
                        message: proto_err.to_string(),
                    },
                );
                match proto_err.severity() {
                    Severity::Framing => return,
                    Severity::Payload if sent.is_ok() => continue,
                    Severity::Payload => return,
                }
            }
        };
        // HELLO is answered before the auth gate — it *is* the auth gate
        // (same contract as the sharded front end).
        if let Request::Hello { token } = &request {
            let ok = match &frontend.auth_token {
                Some(secret) => token_matches(secret, token),
                None => true,
            };
            let response = if ok {
                authed = true;
                Response::HelloOk
            } else {
                frontend
                    .metrics
                    .frames_rejected
                    .fetch_add(1, Ordering::Relaxed);
                Response::Error {
                    message: "authentication failed".into(),
                }
            };
            if write_response(&mut stream, &response).is_err() || !ok {
                return;
            }
            continue;
        }
        if frontend.auth_token.is_some() && !authed {
            frontend
                .metrics
                .frames_rejected
                .fetch_add(1, Ordering::Relaxed);
            let _ = write_response(
                &mut stream,
                &Response::Error {
                    message: "authentication required: send HELLO first".into(),
                },
            );
            return;
        }
        let is_shutdown = matches!(request, Request::Shutdown);
        let response = handle(request, frontend);
        if write_response(&mut stream, &response).is_err() {
            return;
        }
        if is_shutdown {
            // Kick the accept loop out of `accept(2)` so it observes the
            // flag; our local address *is* the server's listen address.
            let _ = TcpStream::connect(frontend.listen_addr);
            return;
        }
    }
}

/// Encodes and writes one response. A response too large for the u32
/// frame length (a pathological certificate) degrades to an ERROR frame
/// rather than killing the connection with nothing on the wire.
fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    match response.to_frame() {
        Ok(frame) => frame.write_to(stream),
        Err(e) => Response::Error {
            message: e.to_string(),
        }
        .to_frame()
        .expect("an error frame is always small enough to encode")
        .write_to(stream),
    }
}

fn handle(request: Request, frontend: &Frontend) -> Response {
    let queue = &frontend.queue;
    let metrics = &frontend.metrics;
    let shutdown = &frontend.shutdown;
    match request {
        Request::Submit { bug, sketch } => {
            metrics.submits.fetch_add(1, Ordering::Relaxed);
            if !all_bugs().iter().any(|b| b.id == bug) {
                return Response::Error {
                    message: format!("unknown bug '{bug}' — see `pres list`"),
                };
            }
            let (digest, fresh_object) = match queue.store().put(&sketch) {
                Ok(r) => r,
                Err(e) => {
                    return Response::Error {
                        message: format!("store ingest failed: {e}"),
                    }
                }
            };
            match queue.submit(&bug, digest) {
                Ok((job, fresh_job)) => Response::Submitted {
                    job,
                    sketch: digest,
                    fresh_object,
                    fresh_job,
                },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        // The streaming triple needs per-connection state (the open
        // stream); it is only meaningful on the sharded front end, and
        // only in v2 frames, where `dispatch` intercepts it first.
        Request::SubmitBegin { .. } | Request::SubmitChunk { .. } | Request::SubmitEnd => {
            Response::Error {
                message: "streaming submit requires a protocol v2 frame".into(),
            }
        }
        Request::Status { job } => Response::Status {
            status: queue.status(job),
        },
        Request::Result { job } => match queue.status(job) {
            Some(JobStatus::Succeeded { certificate, .. }) => {
                match queue.store().get(&certificate) {
                    Ok(Some(bytes)) => Response::Result { certificate: bytes },
                    Ok(None) => Response::Error {
                        message: format!("certificate object {certificate} missing from store"),
                    },
                    Err(e) => Response::Error {
                        message: format!("certificate read failed: {e}"),
                    },
                }
            }
            Some(status) => Response::Error {
                message: format!("job {job} has no certificate: {status}"),
            },
            None => Response::Error {
                message: format!("unknown job {job}"),
            },
        },
        Request::Stats => {
            let mut text = metrics.snapshot().to_string();
            if let Some(cluster) = &frontend.cluster {
                let (primary, replica, foreign) =
                    cluster.census(queue.store()).unwrap_or((0, 0, 0));
                text.push_str(&format!(
                    "\ncluster_self       {}\ncluster_nodes      {}\ncluster_replicas   {}\n\
                     objects_primary    {primary}\nobjects_replica    {replica}\n\
                     objects_foreign    {foreign}",
                    cluster.self_id(),
                    1 + cluster.peer_ids().len(),
                    cluster.replicas(),
                ));
            }
            Response::Stats { text }
        }
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            queue.drain();
            Response::ShuttingDown
        }
        // Both front ends intercept HELLO before dispatching (it is the
        // auth gate); reaching here means the daemon runs open — ack.
        Request::Hello { .. } => Response::HelloOk,
        // The peer-put stream needs per-connection state, exactly like
        // the streaming submit it shares chunk frames with.
        Request::PeerPutBegin { .. } => Response::Error {
            message: "peer put requires a protocol v2 frame".into(),
        },
        // Peer reads serve *local* objects only: routing a miss onward
        // would let two nodes chase each other for an object neither
        // has. The cluster layer's fetch already asks every candidate.
        Request::PeerGet { digest } => match queue.store().get_local(&digest) {
            Ok(body) => {
                if let Some(b) = &body {
                    metrics
                        .peer_bytes_out
                        .fetch_add(b.len() as u64, Ordering::Relaxed);
                }
                Response::PeerObject { body }
            }
            Err(e) => Response::Error {
                message: format!("peer get failed: {e}"),
            },
        },
        Request::PeerStat { digest } => Response::PeerStatIs {
            present: queue.store().contains(&digest),
        },
        Request::PeerList => match queue.store().local_digests() {
            Ok(digests) => Response::PeerDigests { digests },
            Err(e) => Response::Error {
                message: format!("peer list failed: {e}"),
            },
        },
        // Stealing needs the cluster's reaper running (a lease nobody
        // reaps would strand the job), so a standalone daemon refuses.
        Request::PeerSteal { max } => {
            if frontend.cluster.is_none() {
                return Response::Error {
                    message: "this daemon is not a cluster member".into(),
                };
            }
            Response::PeerJobs {
                jobs: queue.steal_jobs(max),
            }
        }
        Request::PeerDone { job, status } => {
            if frontend.cluster.is_none() {
                return Response::Error {
                    message: "this daemon is not a cluster member".into(),
                };
            }
            Response::PeerDoneOk {
                accepted: queue.complete_stolen(job, status),
            }
        }
    }
}
