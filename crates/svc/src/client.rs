//! The daemon's client side, shared by the `pres` CLI subcommands and the
//! integration tests — both speak to the server through exactly this code,
//! so the tests exercise what users run.

use crate::digest::Digest;
use crate::proto::{Frame, ProtoError, Request, Response, DEFAULT_MAX_FRAME};
use crate::queue::JobStatus;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// What a submit returned: the job joined (created or existing) and how
/// the dedup went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// The job handling this `(bug, sketch)`.
    pub job: u64,
    /// Content digest of the submitted sketch.
    pub sketch: Digest,
    /// `false` = the store already held these bytes.
    pub fresh_object: bool,
    /// `false` = an existing job (or finished result) was joined.
    pub fresh_job: bool,
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
    max_frame: u32,
}

fn proto_io(e: ProtoError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

fn server_error(message: String) -> io::Error {
    io::Error::other(format!("daemon: {message}"))
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Generous transport timeouts: a healthy daemon answers every
        // request immediately (job waiting happens client-side by
        // polling), so a silent 30 s means the daemon is gone.
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        Ok(Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    fn roundtrip(&mut self, request: &Request) -> io::Result<Response> {
        request.to_frame().map_err(proto_io)?.write_to(&mut self.stream)?;
        let frame = Frame::read_from(&mut self.stream, self.max_frame)?.map_err(proto_io)?;
        Response::from_frame(&frame).map_err(proto_io)
    }

    /// Submits `sketch` (raw container bytes) for reproduction of `bug`.
    pub fn submit(&mut self, bug: &str, sketch: &[u8]) -> io::Result<SubmitReceipt> {
        match self.roundtrip(&Request::Submit {
            bug: bug.to_string(),
            sketch: sketch.to_vec(),
        })? {
            Response::Submitted {
                job,
                sketch,
                fresh_object,
                fresh_job,
            } => Ok(SubmitReceipt {
                job,
                sketch,
                fresh_object,
                fresh_job,
            }),
            Response::Error { message } => Err(server_error(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to submit: {other:?}"),
            )),
        }
    }

    /// A job's status (`None` = the daemon does not know the id).
    pub fn status(&mut self, job: u64) -> io::Result<Option<JobStatus>> {
        match self.roundtrip(&Request::Status { job })? {
            Response::Status { status } => Ok(status),
            Response::Error { message } => Err(server_error(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to status: {other:?}"),
            )),
        }
    }

    /// Polls until `job` reaches a terminal status or `budget` elapses.
    pub fn wait(&mut self, job: u64, budget: Duration) -> io::Result<JobStatus> {
        let deadline = Instant::now() + budget;
        loop {
            match self.status(job)? {
                Some(status) if status.is_terminal() => return Ok(status),
                Some(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Some(status) => {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("job {job} still '{status}' after {budget:?}"),
                    ))
                }
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("unknown job {job}"),
                    ))
                }
            }
        }
    }

    /// Fetches a succeeded job's certificate bytes.
    pub fn fetch_certificate(&mut self, job: u64) -> io::Result<Vec<u8>> {
        match self.roundtrip(&Request::Result { job })? {
            Response::Result { certificate } => Ok(certificate),
            Response::Error { message } => Err(server_error(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to result: {other:?}"),
            )),
        }
    }

    /// The daemon's rendered metrics.
    pub fn stats(&mut self) -> io::Result<String> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats { text } => Ok(text),
            Response::Error { message } => Err(server_error(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to stats: {other:?}"),
            )),
        }
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { message } => Err(server_error(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to shutdown: {other:?}"),
            )),
        }
    }
}
