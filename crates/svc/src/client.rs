//! The daemon's client side, shared by the `pres` CLI subcommands and the
//! integration tests — both speak to the server through exactly this code,
//! so the tests exercise what users run.
//!
//! By default the client speaks protocol v2: every request carries a tag,
//! responses echo it, and submits stream chunk-by-chunk so neither end
//! ever holds a whole sketch in a single frame. [`Client::use_v1`] drops
//! back to the legacy one-frame-at-a-time v1 dialect (monolithic submits),
//! which every front end still serves. The low-level [`Client::send`] /
//! [`Client::recv`] pair is public so tests and benchmarks can pipeline
//! many tagged requests on one connection before reading any response.

use crate::digest::Digest;
use crate::proto::{
    AnyFrame, PeerJob, ProtoError, Request, Response, DEFAULT_CHUNK_BYTES, DEFAULT_MAX_FRAME,
};
use crate::queue::JobStatus;
use std::io::{self, Read};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Default attempt count for [`Client::connect_with_retry`]: with the
/// default base backoff the last attempt lands ~3 s after the first —
/// enough to ride out a daemon restart, short enough to fail a dead
/// address promptly.
pub const DEFAULT_CONNECT_ATTEMPTS: u32 = 6;
/// Default base backoff for [`Client::connect_with_retry`]; doubles per
/// attempt (100 ms, 200 ms, 400 ms, ...).
pub const DEFAULT_CONNECT_BACKOFF: Duration = Duration::from_millis(100);

/// What a submit returned: the job joined (created or existing) and how
/// the dedup went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// The job handling this `(bug, sketch)`.
    pub job: u64,
    /// Content digest of the submitted sketch.
    pub sketch: Digest,
    /// `false` = the store already held these bytes.
    pub fresh_object: bool,
    /// `false` = an existing job (or finished result) was joined.
    pub fresh_job: bool,
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
    max_frame: u32,
    chunk_bytes: usize,
    next_tag: u32,
    v1: bool,
}

fn proto_io(e: ProtoError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

fn server_error(message: String) -> io::Error {
    io::Error::other(format!("daemon: {message}"))
}

impl Client {
    /// Connects to a daemon (protocol v2, streaming submits).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Generous transport timeouts: a healthy daemon answers every
        // request immediately (job waiting happens client-side by
        // polling), so a silent 30 s means the daemon is gone.
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        Ok(Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            next_tag: 0,
            v1: false,
        })
    }

    /// [`Client::connect`], retried with bounded exponential backoff: up
    /// to `attempts` tries, sleeping `base_backoff * 2^i` (capped at 2 s)
    /// between them. A refused connection during a daemon restart is the
    /// expected case — peers reconnecting and CLI commands racing a
    /// `serve` both land here; only a persistently dead address errors.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        attempts: u32,
        base_backoff: Duration,
    ) -> io::Result<Client> {
        let attempts = attempts.max(1);
        let mut backoff = base_backoff;
        let mut last_err = None;
        for attempt in 0..attempts {
            match Client::connect(&addr) {
                Ok(client) => return Ok(client),
                Err(e) => last_err = Some(e),
            }
            if attempt + 1 < attempts {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(2));
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no connect attempts made")))
    }

    /// Switches this connection to the legacy v1 dialect: untagged frames,
    /// monolithic submits. What a pre-streaming client looks like on the
    /// wire — and what the E18 benchmark's baseline runs.
    pub fn use_v1(&mut self) -> &mut Self {
        self.v1 = true;
        self
    }

    /// Sets the streamed-submit chunk size (bytes; clamped to >= 1).
    pub fn set_chunk_bytes(&mut self, chunk_bytes: usize) -> &mut Self {
        self.chunk_bytes = chunk_bytes.max(1);
        self
    }

    fn take_tag(&mut self) -> u32 {
        self.next_tag = self.next_tag.wrapping_add(1).max(1);
        self.next_tag
    }

    fn write_tagged(&mut self, tag: u32, request: &Request) -> io::Result<()> {
        if self.v1 {
            request.to_frame().map_err(proto_io)?.write_to(&mut self.stream)
        } else {
            request
                .to_frame2(tag)
                .map_err(proto_io)?
                .write_to(&mut self.stream)
        }
    }

    /// Writes one request without reading its response; returns the tag
    /// the response will echo (0 in v1 mode, which has no tags and
    /// answers strictly in order). Pair with [`Client::recv`] to pipeline.
    pub fn send(&mut self, request: &Request) -> io::Result<u32> {
        let tag = if self.v1 { 0 } else { self.take_tag() };
        self.write_tagged(tag, request)?;
        Ok(tag)
    }

    /// Reads one response frame, returning `(tag, response)`.
    pub fn recv(&mut self) -> io::Result<(u32, Response)> {
        let frame = AnyFrame::read_from(&mut self.stream, self.max_frame)?.map_err(proto_io)?;
        let tag = frame.tag();
        let response = Response::from_any(&frame).map_err(proto_io)?;
        Ok((tag, response))
    }

    fn recv_expect(&mut self, expect_tag: u32) -> io::Result<Response> {
        let (tag, response) = self.recv()?;
        if !self.v1 && tag != expect_tag {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response tag {tag} does not echo request tag {expect_tag}"),
            ));
        }
        Ok(response)
    }

    fn roundtrip(&mut self, request: &Request) -> io::Result<Response> {
        let tag = self.send(request)?;
        self.recv_expect(tag)
    }

    fn expect_submitted(response: Response) -> io::Result<SubmitReceipt> {
        match response {
            Response::Submitted {
                job,
                sketch,
                fresh_object,
                fresh_job,
            } => Ok(SubmitReceipt {
                job,
                sketch,
                fresh_object,
                fresh_job,
            }),
            Response::Error { message } => Err(server_error(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to submit: {other:?}"),
            )),
        }
    }

    /// Submits `sketch` (raw container bytes) for reproduction of `bug`.
    /// In v2 mode the bytes go over the chunked streaming path; in v1
    /// mode, as one monolithic SUBMIT frame.
    pub fn submit(&mut self, bug: &str, sketch: &[u8]) -> io::Result<SubmitReceipt> {
        if self.v1 {
            let response = self.roundtrip(&Request::Submit {
                bug: bug.to_string(),
                sketch: sketch.to_vec(),
            })?;
            return Self::expect_submitted(response);
        }
        let mut cursor = sketch;
        self.submit_stream(bug, &mut cursor)
    }

    /// Streams a sketch from any reader: BEGIN, then `chunk_bytes`-sized
    /// CHUNK frames as the reader yields them, then END — the one frame
    /// the daemon answers. Peak memory on both ends is one chunk;
    /// requires v2 (errors in v1 mode rather than silently buffering).
    pub fn submit_stream(&mut self, bug: &str, reader: &mut impl Read) -> io::Result<SubmitReceipt> {
        if self.v1 {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "streaming submit requires protocol v2 (this client is in v1 mode)",
            ));
        }
        let tag = self.take_tag();
        self.write_tagged(
            tag,
            &Request::SubmitBegin {
                bug: bug.to_string(),
            },
        )?;
        let mut buf = vec![0u8; self.chunk_bytes];
        loop {
            let n = match reader.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            self.write_tagged(
                tag,
                &Request::SubmitChunk {
                    data: buf[..n].to_vec(),
                },
            )?;
        }
        self.write_tagged(tag, &Request::SubmitEnd)?;
        let response = self.recv_expect(tag)?;
        Self::expect_submitted(response)
    }

    /// A job's status (`None` = the daemon does not know the id).
    pub fn status(&mut self, job: u64) -> io::Result<Option<JobStatus>> {
        match self.roundtrip(&Request::Status { job })? {
            Response::Status { status } => Ok(status),
            Response::Error { message } => Err(server_error(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to status: {other:?}"),
            )),
        }
    }

    /// Polls until `job` reaches a terminal status or `budget` elapses.
    pub fn wait(&mut self, job: u64, budget: Duration) -> io::Result<JobStatus> {
        let deadline = Instant::now() + budget;
        loop {
            match self.status(job)? {
                Some(status) if status.is_terminal() => return Ok(status),
                Some(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Some(status) => {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("job {job} still '{status}' after {budget:?}"),
                    ))
                }
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("unknown job {job}"),
                    ))
                }
            }
        }
    }

    /// Fetches a succeeded job's certificate bytes.
    pub fn fetch_certificate(&mut self, job: u64) -> io::Result<Vec<u8>> {
        match self.roundtrip(&Request::Result { job })? {
            Response::Result { certificate } => Ok(certificate),
            Response::Error { message } => Err(server_error(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to result: {other:?}"),
            )),
        }
    }

    /// The daemon's rendered metrics.
    pub fn stats(&mut self) -> io::Result<String> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats { text } => Ok(text),
            Response::Error { message } => Err(server_error(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to stats: {other:?}"),
            )),
        }
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { message } => Err(server_error(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to shutdown: {other:?}"),
            )),
        }
    }

    /// Authenticates the connection with the daemon's shared secret.
    /// Must be the first request when the daemon runs with
    /// `--auth-token`; harmless (answered `HelloOk`) when it runs open.
    pub fn hello(&mut self, token: &[u8]) -> io::Result<()> {
        match self.roundtrip(&Request::Hello {
            token: token.to_vec(),
        })? {
            Response::HelloOk => Ok(()),
            Response::Error { message } => Err(server_error(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to hello: {other:?}"),
            )),
        }
    }

    /// Streams an object (which must hash to `digest`) to a peer's local
    /// store over the chunked path. Returns `fresh` (`false` = the peer
    /// already held it). Requires v2.
    pub fn peer_put(&mut self, digest: &Digest, reader: &mut impl Read) -> io::Result<bool> {
        if self.v1 {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "peer object transfer requires protocol v2",
            ));
        }
        let tag = self.take_tag();
        self.write_tagged(tag, &Request::PeerPutBegin { digest: *digest })?;
        let mut buf = vec![0u8; self.chunk_bytes];
        loop {
            let n = match reader.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            self.write_tagged(
                tag,
                &Request::SubmitChunk {
                    data: buf[..n].to_vec(),
                },
            )?;
        }
        self.write_tagged(tag, &Request::SubmitEnd)?;
        match self.recv_expect(tag)? {
            Response::PeerPut {
                digest: echoed,
                fresh,
            } => {
                if echoed != *digest {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "peer acknowledged a different digest than was sent",
                    ));
                }
                Ok(fresh)
            }
            Response::Error { message } => Err(server_error(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to peer-put: {other:?}"),
            )),
        }
    }

    /// Fetches a peer's local copy of an object (`None` = it has none).
    pub fn peer_get(&mut self, digest: &Digest) -> io::Result<Option<Vec<u8>>> {
        match self.roundtrip(&Request::PeerGet { digest: *digest })? {
            Response::PeerObject { body } => Ok(body),
            Response::Error { message } => Err(server_error(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to peer-get: {other:?}"),
            )),
        }
    }

    /// Whether a peer holds a local copy of `digest`.
    pub fn peer_stat(&mut self, digest: &Digest) -> io::Result<bool> {
        match self.roundtrip(&Request::PeerStat { digest: *digest })? {
            Response::PeerStatIs { present } => Ok(present),
            Response::Error { message } => Err(server_error(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to peer-stat: {other:?}"),
            )),
        }
    }

    /// Every digest in a peer's local store.
    pub fn peer_list(&mut self) -> io::Result<Vec<Digest>> {
        match self.roundtrip(&Request::PeerList)? {
            Response::PeerDigests { digests } => Ok(digests),
            Response::Error { message } => Err(server_error(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to peer-list: {other:?}"),
            )),
        }
    }

    /// Asks a peer for up to `max` of its queued jobs.
    pub fn peer_steal(&mut self, max: u32) -> io::Result<Vec<PeerJob>> {
        match self.roundtrip(&Request::PeerSteal { max })? {
            Response::PeerJobs { jobs } => Ok(jobs),
            Response::Error { message } => Err(server_error(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to peer-steal: {other:?}"),
            )),
        }
    }

    /// Reports a stolen job's terminal status back to its origin.
    /// Returns whether the origin accepted it (a `false` means the lease
    /// expired and the origin re-queued the job — not an error).
    pub fn peer_done(&mut self, job: u64, status: JobStatus) -> io::Result<bool> {
        match self.roundtrip(&Request::PeerDone { job, status })? {
            Response::PeerDoneOk { accepted } => Ok(accepted),
            Response::Error { message } => Err(server_error(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to peer-done: {other:?}"),
            )),
        }
    }
}
