//! Byte-level encode/decode helpers shared by the journal and the network
//! protocol.
//!
//! Everything the daemon persists or ships is built from four primitives:
//! fixed-width big-endian integers, and length-prefixed byte strings. The
//! reader is a consuming cursor over a borrowed slice; every accessor
//! returns `None` past the end instead of panicking, so malformed input
//! degrades into a decode error at the call site.
//!
//! Length prefixes are `u32`, and the conversion from `usize` is
//! *checked*: a payload over `u32::MAX` bytes surfaces as a
//! [`LenOverflow`] at the encode site (a protocol or journal error to the
//! caller), never as a silently truncated prefix that frames garbage.

use crate::digest::Digest;

/// A payload too large for a `u32` length prefix. Carries the offending
/// byte count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LenOverflow(pub usize);

impl std::fmt::Display for LenOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "payload of {} bytes exceeds the u32 length-prefix limit",
            self.0
        )
    }
}

impl std::error::Error for LenOverflow {}

impl From<LenOverflow> for std::io::Error {
    fn from(e: LenOverflow) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
    }
}

/// Checked `usize` → `u32` length conversion.
pub fn check_len(len: usize) -> Result<u32, LenOverflow> {
    u32::try_from(len).map_err(|_| LenOverflow(len))
}

/// Appends a `u32` big-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Appends a `u64` big-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Appends a `u32` length prefix followed by the bytes; rejects data
/// whose length does not fit the prefix.
pub fn put_bytes(out: &mut Vec<u8>, data: &[u8]) -> Result<(), LenOverflow> {
    put_u32(out, check_len(data.len())?);
    out.extend_from_slice(data);
    Ok(())
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), LenOverflow> {
    put_bytes(out, s.as_bytes())
}

/// Appends a digest's 32 raw bytes.
pub fn put_digest(out: &mut Vec<u8>, d: &Digest) {
    out.extend_from_slice(&d.0);
}

/// A consuming cursor over encoded bytes.
pub struct Reader<'a>(pub &'a [u8]);

impl<'a> Reader<'a> {
    pub fn u8(&mut self) -> Option<u8> {
        let (&b, rest) = self.0.split_first()?;
        self.0 = rest;
        Some(b)
    }

    pub fn u32(&mut self) -> Option<u32> {
        let (head, rest) = self.0.split_at_checked(4)?;
        self.0 = rest;
        Some(u32::from_be_bytes(head.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Option<u64> {
        let (head, rest) = self.0.split_at_checked(8)?;
        self.0 = rest;
        Some(u64::from_be_bytes(head.try_into().unwrap()))
    }

    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        let (head, rest) = self.0.split_at_checked(len)?;
        self.0 = rest;
        Some(head)
    }

    pub fn str(&mut self) -> Option<&'a str> {
        std::str::from_utf8(self.bytes()?).ok()
    }

    pub fn digest(&mut self) -> Option<Digest> {
        let (head, rest) = self.0.split_at_checked(32)?;
        self.0 = rest;
        Some(Digest(head.try_into().unwrap()))
    }

    /// Consumes and returns everything left — for payloads whose tail is
    /// opaque bytes with no inner length prefix (streaming submit chunks).
    pub fn take_rest(&mut self) -> &'a [u8] {
        std::mem::take(&mut self.0)
    }

    /// Whether every byte has been consumed — decoders check this so
    /// trailing garbage is rejected rather than silently ignored.
    pub fn is_done(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::sha256;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 7);
        put_str(&mut buf, "héllo").unwrap();
        put_bytes(&mut buf, &[1, 2, 3]).unwrap();
        let d = sha256(b"x");
        put_digest(&mut buf, &d);

        let mut r = Reader(&buf);
        assert_eq!(r.u32(), Some(0xdead_beef));
        assert_eq!(r.u64(), Some(u64::MAX - 7));
        assert_eq!(r.str(), Some("héllo"));
        assert_eq!(r.bytes(), Some(&[1u8, 2, 3][..]));
        assert_eq!(r.digest(), Some(d));
        assert!(r.is_done());
    }

    #[test]
    fn oversized_length_is_a_checked_error() {
        assert_eq!(check_len(0), Ok(0));
        assert_eq!(check_len(u32::MAX as usize), Ok(u32::MAX));
        let too_big = u32::MAX as usize + 1;
        assert_eq!(check_len(too_big), Err(LenOverflow(too_big)));
        let io: std::io::Error = LenOverflow(too_big).into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn truncated_reads_are_none_not_panics() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"abcdef").unwrap();
        for cut in 0..buf.len() {
            let mut r = Reader(&buf[..cut]);
            assert_eq!(r.bytes(), None, "cut at {cut}");
        }
        let mut r = Reader(&[0xff, 0xff, 0xff, 0xff]);
        assert_eq!(r.bytes(), None, "length prefix larger than payload");
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[0xff, 0xfe]).unwrap();
        assert_eq!(Reader(&buf).str(), None);
    }
}
