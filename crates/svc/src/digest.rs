//! SHA-256, implemented in-repo.
//!
//! The sketch store addresses objects by content, so the digest has to be
//! collision-resistant across everything a client might ever submit — a
//! non-cryptographic mixer would make `put` dedup unsound under adversarial
//! (or merely unlucky) inputs. The workspace is dependency-free by policy,
//! so the hash lives here: the FIPS 180-4 compression function over 512-bit
//! blocks, nothing clever.

/// A 32-byte content digest (SHA-256).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The digest rendered as 64 lowercase hex characters.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }

    /// Parses 64 hex characters back into a digest.
    pub fn from_hex(s: &str) -> Option<Digest> {
        let s = s.as_bytes();
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, pair) in s.chunks(2).enumerate() {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

fn compress(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

const INIT: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256: feed bytes with [`Sha256::update`] as they arrive
/// and call [`Sha256::finalize`] once. The streaming SUBMIT path hashes a
/// sketch chunk-by-chunk as it spills to the store staging file, so peak
/// memory never holds the whole message; [`sha256`] is the one-shot
/// convenience over the same state machine.
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    pub fn new() -> Sha256 {
        Sha256 {
            state: INIT,
            buf: [0u8; 64],
            buf_len: 0,
            total: 0,
        }
    }

    /// Absorbs `data`; may be called any number of times with any split.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                return;
            }
        }
        let mut blocks = data.chunks_exact(64);
        for block in &mut blocks {
            compress(&mut self.state, block);
        }
        let tail = blocks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Pads, compresses the final block(s), and returns the digest.
    pub fn finalize(mut self) -> Digest {
        // Padding: 0x80, zeros, then the 64-bit message length in bits.
        let mut last = [0u8; 128];
        last[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        last[self.buf_len] = 0x80;
        let bit_len = self.total.wrapping_mul(8);
        let padded = if self.buf_len < 56 { 64 } else { 128 };
        last[padded - 8..padded].copy_from_slice(&bit_len.to_be_bytes());
        for block in last[..padded].chunks_exact(64) {
            compress(&mut self.state, block);
        }
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }
}

/// SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST CAVP reference vectors.
    #[test]
    fn nist_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(sha256(input).to_hex(), *expected);
        }
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn padding_boundaries() {
        // Lengths straddling the one-vs-two final block boundary (55/56/64)
        // all round-trip through the hex codec and differ pairwise.
        let mut seen = std::collections::BTreeSet::new();
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 127, 128, 129] {
            let d = sha256(&vec![0xa5u8; len]);
            assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
            assert!(seen.insert(d.to_hex()), "collision at length {len}");
        }
    }

    #[test]
    fn incremental_matches_one_shot() {
        // Every split pattern of a message spanning several blocks must
        // land on the same digest as the one-shot hash, including updates
        // that straddle the internal 64-byte buffer in both directions.
        let data: Vec<u8> = (0..517u32).map(|i| (i * 31 + 7) as u8).collect();
        let expect = sha256(&data);
        for step in [1usize, 3, 7, 63, 64, 65, 100, 517] {
            let mut h = Sha256::new();
            for chunk in data.chunks(step) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), expect, "step {step}");
        }
        // Uneven splits: a long feed followed by single bytes.
        let mut h = Sha256::new();
        h.update(&data[..130]);
        for b in &data[130..] {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), expect);
        // Empty updates are no-ops.
        let mut h = Sha256::new();
        h.update(&[]);
        h.update(&data);
        h.update(&[]);
        assert_eq!(h.finalize(), expect);
    }

    #[test]
    fn from_hex_rejects_garbage() {
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(64)), None);
        assert_eq!(Digest::from_hex(&"ab".repeat(31)), None);
    }
}
