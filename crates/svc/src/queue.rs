//! The job queue and its worker pool.
//!
//! A *job* is one reproduction request: a bug id from the evaluation
//! corpus plus the digest of a sketch already ingested into the store.
//! Jobs are FIFO, deduplicated on `(bug, sketch)` — resubmitting the same
//! failure joins the existing job (or its finished result) instead of
//! burning a second exploration — and journaled before acknowledgement so
//! a restarted daemon resumes exactly the unfinished work.
//!
//! Each worker thread owns one warm [`VthreadPool`] and hands it to every
//! exploration it runs ([`explore::reproduce_with_index`]), so
//! steady-state job turnover performs zero OS thread spawns. The decoded
//! sketch and its replay index come from the digest-keyed
//! [`SketchCache`], so repeated executions over one sketch (retries,
//! multi-bug jobs, duplicate submissions) skip the store read, the
//! SHA-256 re-verification, the decode, and the index build entirely.
//! Exploration runs the serial loop (the same path as
//! [`pres_core::Pres::reproduce`] with default settings), which keeps a
//! daemon-minted certificate byte-identical to an in-process
//! reproduction of the same sketch — cached or not.
//!
//! A job that exhausts its attempt budget is retried with exponential
//! backoff up to [`QueueConfig::max_retries`] times; each retry offsets
//! the exploration base seed, so a retry searches a fresh neighborhood
//! instead of deterministically repeating the failed one. A job that
//! exceeds [`QueueConfig::job_timeout`] is stopped cooperatively via
//! [`StopToken`] and marked terminal. Shutdown is a drain: workers finish
//! the jobs they are running, queued jobs stay journaled for the next
//! start.
//!
//! ## Work stealing (cluster mode)
//!
//! An idle peer may drain this queue's backlog: [`JobQueue::steal_jobs`]
//! pops ready jobs and parks them under a *lease*; the thief executes
//! ([`JobQueue::execute_stolen`], the same `execute` path workers run,
//! seeded by the origin's retry counter so the search — and any minted
//! certificate — is byte-identical to a local run) and reports the
//! terminal status back through [`JobQueue::complete_stolen`], which
//! journals it and runs the normal retry ladder. A thief that dies
//! simply lets the lease expire ([`JobQueue::reap_stolen`]) and the job
//! re-queues locally — stealing can duplicate work, never lose it.
//! Nodes in one cluster must share exploration settings
//! (`max_attempts`, `job_timeout`), or a stolen run may not be the run
//! the origin would have performed.

use crate::cache::{CachedSketch, SketchCache};
use crate::digest::Digest;
use crate::faultpoint::Faults;
use crate::journal::{GroupCommit, Journal, Record};
use crate::metrics::Metrics;
use crate::proto::PeerJob;
use crate::store::Store;
use crate::wire::{self, Reader};
use pres_apps::registry::all_bugs;
use pres_core::codec::decode_sketch;
use pres_core::explore::{self, ExploreConfig, StopToken};
use pres_core::oracle::StatusOracle;
use pres_core::sketch::SketchIndex;
use pres_tvm::pool::VthreadPool;
use pres_tvm::sync::{Condvar, Mutex};
use pres_tvm::vm::VmConfig;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a job stands. `Queued`/`Running` are transient; the rest are
/// terminal and journaled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting for a worker. `retries` counts requeues already performed.
    Queued { retries: u32 },
    /// An exploration is running right now.
    Running,
    /// Reproduced: the certificate is in the store under `certificate`.
    Succeeded { attempts: u32, certificate: Digest },
    /// Every attempt budget (including retries) spent without reproducing.
    Exhausted { attempts: u32 },
    /// The per-job wall-clock timeout tripped mid-search.
    TimedOut { attempts: u32 },
    /// Rejected before exploration could start.
    Failed { message: String },
}

impl JobStatus {
    /// Whether no further transition will happen.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobStatus::Queued { .. } | JobStatus::Running)
    }

    /// Appends the wire form (shared by the journal and the protocol).
    pub fn encode(&self, out: &mut Vec<u8>) -> Result<(), wire::LenOverflow> {
        match self {
            JobStatus::Queued { retries } => {
                out.push(0);
                wire::put_u32(out, *retries);
            }
            JobStatus::Running => out.push(1),
            JobStatus::Succeeded {
                attempts,
                certificate,
            } => {
                out.push(2);
                wire::put_u32(out, *attempts);
                wire::put_digest(out, certificate);
            }
            JobStatus::Exhausted { attempts } => {
                out.push(3);
                wire::put_u32(out, *attempts);
            }
            JobStatus::TimedOut { attempts } => {
                out.push(4);
                wire::put_u32(out, *attempts);
            }
            JobStatus::Failed { message } => {
                out.push(5);
                wire::put_str(out, message)?;
            }
        }
        Ok(())
    }

    /// Decodes the wire form.
    pub fn decode(r: &mut Reader<'_>) -> Option<JobStatus> {
        Some(match r.u8()? {
            0 => JobStatus::Queued { retries: r.u32()? },
            1 => JobStatus::Running,
            2 => JobStatus::Succeeded {
                attempts: r.u32()?,
                certificate: r.digest()?,
            },
            3 => JobStatus::Exhausted { attempts: r.u32()? },
            4 => JobStatus::TimedOut { attempts: r.u32()? },
            5 => JobStatus::Failed {
                message: r.str()?.to_string(),
            },
            _ => return None,
        })
    }
}

impl std::fmt::Display for JobStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobStatus::Queued { retries: 0 } => write!(f, "queued"),
            JobStatus::Queued { retries } => write!(f, "queued (retry {retries})"),
            JobStatus::Running => write!(f, "running"),
            JobStatus::Succeeded {
                attempts,
                certificate,
            } => write!(f, "succeeded after {attempts} attempt(s); certificate {certificate}"),
            JobStatus::Exhausted { attempts } => {
                write!(f, "exhausted {attempts} attempt(s) without reproducing")
            }
            JobStatus::TimedOut { attempts } => {
                write!(f, "timed out after {attempts} attempt(s)")
            }
            JobStatus::Failed { message } => write!(f, "failed: {message}"),
        }
    }
}

/// Queue tuning.
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Attempt budget per exploration try.
    pub max_attempts: u32,
    /// Wall-clock budget per exploration try.
    pub job_timeout: Duration,
    /// Requeues allowed after the budget is exhausted without success.
    pub max_retries: u32,
    /// Backoff before retry `r` is eligible: `retry_backoff << (r - 1)`.
    pub retry_backoff: Duration,
    /// Most records one journal `fdatasync` may cover (group commit).
    /// `1` restores per-record syncing — the measured E19 baseline.
    pub journal_batch: usize,
    /// How long a commit leader holds a cohort open for concurrent
    /// appenders to join (`0` = commit immediately; concurrent appends
    /// still batch opportunistically).
    pub journal_hold: Duration,
    /// Byte budget of the digest-keyed sketch decode cache (`0` disables
    /// it — every execution re-reads, re-verifies, and re-decodes).
    pub sketch_cache_bytes: u64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            workers: 1,
            max_attempts: 1000,
            job_timeout: Duration::from_secs(60),
            max_retries: 2,
            retry_backoff: Duration::from_millis(50),
            journal_batch: GroupCommit::default().max_records,
            journal_hold: GroupCommit::default().max_hold,
            sketch_cache_bytes: 64 << 20,
        }
    }
}

/// One job's bookkeeping.
#[derive(Debug, Clone)]
struct Job {
    bug: String,
    sketch: Digest,
    status: JobStatus,
    submitted: Instant,
}

/// The state every worker and connection handler shares under one lock.
struct Shared {
    jobs: BTreeMap<u64, Job>,
    /// `(bug, sketch digest)` → job id: the dedup index.
    dedup: BTreeMap<(String, Digest), u64>,
    /// `(bug, sketch digest)` keys whose SUBMIT record is being journaled
    /// right now. A concurrent duplicate submit must wait for the
    /// original's sync (joining it before would acknowledge a job whose
    /// record may never become durable) — see [`JobQueue::submit`].
    submit_inflight: BTreeSet<(String, Digest)>,
    /// Ready-to-run job ids, FIFO.
    ready: VecDeque<u64>,
    /// Backoff parking lot: `(eligible_at, job id)`, unordered (scanned).
    parked: Vec<(Instant, u64)>,
    /// Jobs handed to a stealing peer, by id: the lease deadline and the
    /// retry counter the thief was given. Counted in `busy` until the
    /// thief reports back or the lease is reaped.
    stolen: BTreeMap<u64, (Instant, u32)>,
    next_id: u64,
    draining: bool,
    /// Workers (local or remote, via a steal lease) currently executing
    /// a job (drain waits for zero).
    busy: usize,
}

/// The queue handle shared by the server and its workers.
pub struct JobQueue {
    shared: Mutex<Shared>,
    work_ready: Condvar,
    idle: Condvar,
    /// Woken when an in-flight submit settles (journaled or failed).
    submit_settled: Condvar,
    /// The journal owns its own synchronization (the group-commit
    /// protocol), so concurrent submitters and workers append without an
    /// outer lock — that is what lets their records share cohorts.
    journal: Journal,
    store: Arc<Store>,
    cache: SketchCache,
    metrics: Arc<Metrics>,
    config: QueueConfig,
}

impl JobQueue {
    /// Opens the queue against `store`, replaying `journal` to restore
    /// jobs from the previous run: terminal jobs come back queryable,
    /// unfinished jobs (submitted or retried but never resolved) are
    /// requeued for execution.
    pub fn open(
        journal_path: impl AsRef<std::path::Path>,
        store: Arc<Store>,
        metrics: Arc<Metrics>,
        config: QueueConfig,
    ) -> io::Result<JobQueue> {
        JobQueue::open_with_faults(journal_path, store, metrics, config, Faults::none())
    }

    /// [`JobQueue::open`] with an injectable crash-point handle for the
    /// journal write path (the store's handle travels with the store).
    pub fn open_with_faults(
        journal_path: impl AsRef<std::path::Path>,
        store: Arc<Store>,
        metrics: Arc<Metrics>,
        config: QueueConfig,
        faults: Faults,
    ) -> io::Result<JobQueue> {
        let group = GroupCommit {
            max_records: config.journal_batch.max(1),
            max_hold: config.journal_hold,
        };
        let (journal, records) =
            Journal::open_with(journal_path, faults, group, Arc::clone(&metrics))?;
        let mut shared = Shared {
            jobs: BTreeMap::new(),
            dedup: BTreeMap::new(),
            submit_inflight: BTreeSet::new(),
            ready: VecDeque::new(),
            parked: Vec::new(),
            stolen: BTreeMap::new(),
            next_id: 1,
            draining: false,
            busy: 0,
        };
        let now = Instant::now();
        for record in records {
            match record {
                Record::Submit { job, bug, sketch } => {
                    shared.dedup.insert((bug.clone(), sketch), job);
                    shared.jobs.insert(
                        job,
                        Job {
                            bug,
                            sketch,
                            status: JobStatus::Queued { retries: 0 },
                            submitted: now,
                        },
                    );
                    shared.next_id = shared.next_id.max(job + 1);
                }
                Record::Retry { job, retries } => {
                    if let Some(j) = shared.jobs.get_mut(&job) {
                        j.status = JobStatus::Queued { retries };
                    }
                }
                Record::Result { job, status } => {
                    if let Some(j) = shared.jobs.get_mut(&job) {
                        j.status = status;
                    }
                }
            }
        }
        // Everything non-terminal was in flight or waiting when the
        // previous process exited: run it (again).
        let unfinished: Vec<u64> = shared
            .jobs
            .iter()
            .filter(|(_, j)| !j.status.is_terminal())
            .map(|(&id, _)| id)
            .collect();
        shared.ready.extend(&unfinished);
        Ok(JobQueue {
            shared: Mutex::new(shared),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            submit_settled: Condvar::new(),
            journal,
            store,
            cache: SketchCache::new(config.sketch_cache_bytes),
            metrics,
            config,
        })
    }

    /// The decode cache (read-mostly introspection for tests and stats).
    pub fn cache(&self) -> &SketchCache {
        &self.cache
    }

    /// The store this queue resolves sketches from and mints certificates
    /// into.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Submits a job. Returns `(job id, freshly created?)`; a duplicate
    /// `(bug, sketch)` joins the existing job whatever its state.
    ///
    /// The journal append runs *outside* the queue lock — that is what
    /// lets concurrent submits ride one group-commit cohort and share a
    /// single `fdatasync` instead of serializing on it. The job becomes
    /// visible (dedup-joinable, claimable) only after its SUBMIT record
    /// is covered by a sync; a concurrent duplicate arriving in that
    /// window waits for the original to settle rather than acking a job
    /// whose durability is still in flight.
    pub fn submit(&self, bug: &str, sketch: Digest) -> io::Result<(u64, bool)> {
        let key = (bug.to_string(), sketch);
        let id = loop {
            let mut s = self.shared.lock();
            if let Some(&existing) = s.dedup.get(&key) {
                self.metrics.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((existing, false));
            }
            if s.draining {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "daemon is draining; not accepting new jobs",
                ));
            }
            if s.submit_inflight.contains(&key) {
                // The same (bug, sketch) is being journaled right now:
                // wait for its outcome, then re-evaluate (dedup hit if
                // it succeeded, fresh submit if it failed).
                self.submit_settled.wait(&mut s);
                continue;
            }
            let id = s.next_id;
            s.next_id += 1;
            s.submit_inflight.insert(key.clone());
            break id;
        };
        let appended = self.journal.append(&Record::Submit {
            job: id,
            bug: bug.to_string(),
            sketch,
        });
        let mut s = self.shared.lock();
        s.submit_inflight.remove(&key);
        if let Err(e) = appended {
            // The record is not durable, so the job must not exist: an
            // acknowledgement here would promise a durability the
            // journal no longer has.
            self.metrics.journal_append_failures.fetch_add(1, Ordering::Relaxed);
            drop(s);
            self.submit_settled.notify_all();
            return Err(e);
        }
        s.dedup.insert(key, id);
        s.jobs.insert(
            id,
            Job {
                bug: bug.to_string(),
                sketch,
                status: JobStatus::Queued { retries: 0 },
                submitted: Instant::now(),
            },
        );
        s.ready.push_back(id);
        drop(s);
        self.submit_settled.notify_all();
        self.work_ready.notify_one();
        Ok((id, true))
    }

    /// A job's current status (`None` = unknown id).
    pub fn status(&self, job: u64) -> Option<JobStatus> {
        self.shared.lock().jobs.get(&job).map(|j| j.status.clone())
    }

    /// Jobs ready to run right now (excludes running, parked, stolen).
    pub fn backlog(&self) -> usize {
        self.shared.lock().ready.len()
    }

    /// Whether this node is strictly idle — nothing ready, nothing
    /// running — and accepting work. The server's stealer thread only
    /// raids peers while this holds.
    pub fn wants_work(&self) -> bool {
        let s = self.shared.lock();
        !s.draining && s.ready.is_empty() && s.parked.is_empty() && s.busy == 0
    }

    /// How long a thief may sit on a stolen job before the origin takes
    /// it back: two full exploration budgets plus scheduling headroom.
    fn steal_lease(&self) -> Duration {
        self.config
            .job_timeout
            .saturating_mul(2)
            .saturating_add(Duration::from_secs(2))
    }

    /// Hands up to `max` ready jobs to a stealing peer. Each job leaves
    /// the ready queue, shows `Running`, counts as busy (so a drain
    /// waits for its result), and is parked under a lease; if the thief
    /// never reports back, [`JobQueue::reap_stolen`] re-queues it.
    /// Returns nothing while draining — a drain's queued jobs belong to
    /// the journal, not to peers.
    pub fn steal_jobs(&self, max: u32) -> Vec<PeerJob> {
        let mut handed = Vec::new();
        let mut s = self.shared.lock();
        if s.draining {
            return handed;
        }
        let deadline = Instant::now() + self.steal_lease();
        while handed.len() < max as usize {
            let Some(id) = s.ready.pop_front() else { break };
            let job = s.jobs.get_mut(&id).expect("ready id has a job");
            let retries = match job.status {
                JobStatus::Queued { retries } => retries,
                _ => continue,
            };
            job.status = JobStatus::Running;
            let (bug, sketch) = (job.bug.clone(), job.sketch);
            s.busy += 1;
            s.stolen.insert(id, (deadline, retries));
            handed.push(PeerJob {
                job: id,
                bug,
                sketch,
                retries,
            });
        }
        drop(s);
        self.metrics
            .stolen_served
            .fetch_add(handed.len() as u64, Ordering::Relaxed);
        handed
    }

    /// Lands a stolen job's terminal status: journals it and runs the
    /// normal retry ladder, exactly as if a local worker had produced
    /// it. Returns `false` (thief's work discarded) when the lease
    /// already expired — the job re-queued and will run again; a stray
    /// certificate the thief stored is harmless, it is content-addressed.
    pub fn complete_stolen(&self, id: u64, outcome: JobStatus) -> bool {
        if !outcome.is_terminal() {
            return false;
        }
        let mut s = self.shared.lock();
        let Some((_, retries)) = s.stolen.remove(&id) else {
            return false;
        };
        let job = s.jobs.get(&id).expect("leased id has a job").clone();
        drop(s);
        self.resolve(id, &job, retries, outcome);
        true
    }

    /// Re-queues every stolen job whose lease expired (thief died or
    /// hung). Driven periodically by the server's stealer thread.
    pub fn reap_stolen(&self) {
        let now = Instant::now();
        let mut s = self.shared.lock();
        let expired: Vec<u64> = s
            .stolen
            .iter()
            .filter(|(_, &(deadline, _))| deadline <= now)
            .map(|(&id, _)| id)
            .collect();
        if expired.is_empty() {
            return;
        }
        for id in expired {
            let (_, retries) = s.stolen.remove(&id).expect("collected above");
            s.jobs.get_mut(&id).expect("leased id has a job").status =
                JobStatus::Queued { retries };
            s.ready.push_back(id);
            s.busy -= 1;
        }
        drop(s);
        self.work_ready.notify_all();
        self.idle.notify_all();
    }

    /// Executes someone else's job with their retry counter — the
    /// thief's half of work stealing. Identical to the worker path
    /// (same cache, same seed-offset rule), so the outcome is the one
    /// the origin would have computed.
    pub fn execute_stolen(
        &self,
        bug: &str,
        sketch: Digest,
        retries: u32,
        pool: &VthreadPool,
    ) -> JobStatus {
        let job = Job {
            bug: bug.to_string(),
            sketch,
            status: JobStatus::Running,
            submitted: Instant::now(),
        };
        self.metrics.steals.fetch_add(1, Ordering::Relaxed);
        self.execute(&job, retries, pool)
    }

    /// Begins the drain: no new submissions, queued jobs stay journaled,
    /// and `await_drained` unblocks once running jobs finish.
    ///
    /// Stolen leases are reclaimed here rather than waited on: a
    /// draining front end no longer serves PEER_DONE, so a thief's
    /// report can never land and the lease would pin `busy` forever.
    /// The reclaimed jobs stay journaled as queued and re-run on the
    /// next start (the thief's stray certificate, if any, is harmless —
    /// it is content-addressed).
    pub fn drain(&self) {
        let mut s = self.shared.lock();
        s.draining = true;
        let leased: Vec<u64> = s.stolen.keys().copied().collect();
        for id in leased {
            let (_, retries) = s.stolen.remove(&id).expect("collected above");
            s.jobs.get_mut(&id).expect("leased id has a job").status =
                JobStatus::Queued { retries };
            s.busy -= 1;
        }
        drop(s);
        self.work_ready.notify_all();
        self.idle.notify_all();
    }

    /// Blocks until the drain completes (every worker idle).
    pub fn await_drained(&self) {
        let mut s = self.shared.lock();
        while s.busy > 0 {
            self.idle.wait(&mut s);
        }
    }

    /// One worker's main loop: claim → execute → resolve, until drain.
    /// Called from [`crate::server`]-spawned threads; `pool` is the
    /// worker's private warm executor pool, reused across jobs.
    pub fn work(&self, pool: &VthreadPool) {
        loop {
            let Some((id, job, retries)) = self.claim() else {
                return;
            };
            let outcome = self.execute(&job, retries, pool);
            self.resolve(id, &job, retries, outcome);
        }
    }

    /// Claims the next runnable job, honoring backoff eligibility; blocks
    /// while the queue is empty, returns `None` once draining.
    fn claim(&self) -> Option<(u64, Job, u32)> {
        let mut s = self.shared.lock();
        loop {
            let now = Instant::now();
            // Promote parked jobs whose backoff has elapsed.
            let mut i = 0;
            while i < s.parked.len() {
                if s.parked[i].0 <= now {
                    let (_, id) = s.parked.swap_remove(i);
                    s.ready.push_back(id);
                } else {
                    i += 1;
                }
            }
            if let Some(id) = s.ready.pop_front() {
                let job = s.jobs.get_mut(&id).expect("ready id has a job");
                let retries = match job.status {
                    JobStatus::Queued { retries } => retries,
                    // Terminal while parked (shouldn't happen) — skip.
                    _ => continue,
                };
                job.status = JobStatus::Running;
                s.busy += 1;
                return Some((id, s.jobs[&id].clone(), retries));
            }
            // Draining: exit once nothing is runnable now *or* parked for
            // a retry — a parked job was accepted, so the drain honors its
            // backoff rather than stranding it mid-retry.
            if s.draining && s.parked.is_empty() {
                return None;
            }
            match s.parked.iter().map(|&(at, _)| at).min() {
                // Sleep until the earliest parked job becomes eligible.
                Some(at) => {
                    let wait = at.saturating_duration_since(now).max(Duration::from_millis(1));
                    self.work_ready.wait_timeout(&mut s, wait);
                }
                None => self.work_ready.wait(&mut s),
            }
        }
    }

    /// Loads `digest`'s decoded sketch + replay index, from the cache
    /// when resident, from the store (read + SHA-256 verify + decode +
    /// index build) otherwise. The decode is a pure function of the
    /// digest's immutable bytes, so a hit is observationally identical
    /// to a miss — that is the byte-identity pin `tests/svc_cache.rs`
    /// holds the daemon to.
    fn load_sketch(&self, digest: &Digest) -> Result<Arc<CachedSketch>, JobStatus> {
        if let Some(cached) = self.cache.get(digest) {
            self.metrics.sketch_cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(cached);
        }
        self.metrics.sketch_cache_misses.fetch_add(1, Ordering::Relaxed);
        let data = match self.store.get(digest) {
            Ok(Some(data)) => data,
            Ok(None) => {
                return Err(JobStatus::Failed {
                    message: format!("sketch {digest} not in store"),
                })
            }
            Err(e) => {
                return Err(JobStatus::Failed {
                    message: format!("sketch {digest}: {e}"),
                })
            }
        };
        let sketch = match decode_sketch(&data) {
            Ok(s) => s,
            Err(e) => {
                return Err(JobStatus::Failed {
                    message: format!("sketch {digest} does not decode: {e}"),
                })
            }
        };
        let index = Arc::new(SketchIndex::new(&sketch));
        let cached = Arc::new(CachedSketch { sketch, index });
        // Charged at the encoded length — known without a deep-size
        // walk, and proportional to the decoded footprint.
        let evicted = self.cache.insert(*digest, Arc::clone(&cached), data.len() as u64);
        self.metrics.sketch_cache_evictions.fetch_add(evicted, Ordering::Relaxed);
        Ok(cached)
    }

    /// Runs one exploration try for `job`.
    fn execute(&self, job: &Job, retries: u32, pool: &VthreadPool) -> JobStatus {
        let Some(bug) = all_bugs().into_iter().find(|b| b.id == job.bug) else {
            return JobStatus::Failed {
                message: format!("unknown bug '{}'", job.bug),
            };
        };
        let program = bug.program();
        let cached = match self.load_sketch(&job.sketch) {
            Ok(cached) => cached,
            Err(status) => return status,
        };
        let sketch = &cached.sketch;
        if sketch.meta.program != program.name() {
            return JobStatus::Failed {
                message: format!(
                    "sketch was recorded from '{}', not '{}'",
                    sketch.meta.program,
                    program.name()
                ),
            };
        }
        if sketch.meta.failure_signature.is_empty() {
            return JobStatus::Failed {
                message: "sketch records a clean run; nothing to reproduce".into(),
            };
        }
        if sketch.checkpoint.is_some() {
            self.metrics
                .jobs_from_checkpoint
                .fetch_add(1, Ordering::Relaxed);
        }

        let mut explore = ExploreConfig {
            max_attempts: self.config.max_attempts,
            stop: Some(StopToken::after(self.config.job_timeout)),
            ..ExploreConfig::default()
        };
        // Retry `r` shifts the seed neighborhood: exploration is
        // deterministic, so re-running the identical search would fail
        // identically. The first try (r = 0) keeps the default base seed —
        // that is what makes daemon certificates byte-identical to
        // `Pres::reproduce` for first-try successes.
        explore.base_seed = explore
            .base_seed
            .wrapping_add(u64::from(retries).wrapping_mul(0x9e37_79b9));

        // The cached index is exactly what `reproduce_with_oracle_and_pool`
        // would build from the sketch, so the search — and the minted
        // certificate — is byte-identical to the uncached path.
        let repro = explore::reproduce_with_index(
            program.as_ref(),
            &cached.index,
            &StatusOracle::new(&sketch.meta.failure_signature),
            &VmConfig::default(),
            &explore,
            Some(pool),
        );
        self.metrics
            .attempts
            .fetch_add(u64::from(repro.attempts), Ordering::Relaxed);
        if repro.reproduced {
            let cert = repro
                .certificate
                .expect("certificate exists on success")
                .encode();
            match self.store.put(&cert) {
                Ok((certificate, _)) => JobStatus::Succeeded {
                    attempts: repro.attempts,
                    certificate,
                },
                Err(e) => JobStatus::Failed {
                    message: format!("certificate store write failed: {e}"),
                },
            }
        } else if repro.stopped {
            JobStatus::TimedOut {
                attempts: repro.attempts,
            }
        } else {
            JobStatus::Exhausted {
                attempts: repro.attempts,
            }
        }
    }

    /// Journals and publishes a try's outcome, requeueing exhausted jobs
    /// that still have retries left.
    fn resolve(&self, id: u64, job: &Job, retries: u32, outcome: JobStatus) {
        let next = match outcome {
            JobStatus::Exhausted { .. } if retries < self.config.max_retries => {
                let retries = retries + 1;
                self.metrics.retries.fetch_add(1, Ordering::Relaxed);
                if let Err(e) = self.journal.append(&Record::Retry { job: id, retries }) {
                    // A lost RETRY record only costs seed-offset fidelity
                    // after a crash (the job replays as retry 0); requeue
                    // regardless — dropping the job would be worse. But a
                    // failing journal is an operator's problem either
                    // way: count it where STATS can surface it.
                    self.metrics.journal_append_failures.fetch_add(1, Ordering::Relaxed);
                    eprintln!("pres-svc: journal append (retry, job {id}) failed: {e}");
                }
                let backoff = self.config.retry_backoff * 2u32.pow(retries - 1);
                let mut s = self.shared.lock();
                s.parked.push((Instant::now() + backoff, id));
                s.jobs.get_mut(&id).expect("job exists").status =
                    JobStatus::Queued { retries };
                s.busy -= 1;
                drop(s);
                self.work_ready.notify_all();
                self.idle.notify_all();
                return;
            }
            terminal => terminal,
        };
        match &next {
            JobStatus::Succeeded { .. } => &self.metrics.jobs_succeeded,
            JobStatus::Exhausted { .. } => &self.metrics.jobs_exhausted,
            JobStatus::TimedOut { .. } => &self.metrics.jobs_timed_out,
            _ => &self.metrics.jobs_failed,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.metrics.observe_latency(job.submitted.elapsed());
        // Durability ordering: the RESULT record is fdatasync'ed by
        // `append` BEFORE the status below becomes observable, so any
        // terminal status a client has seen survives a crash. If the
        // append itself fails the status is still served for this process
        // lifetime (the work is done and the certificate, if any, is
        // already content-addressed in the store); a restart re-runs the
        // job and converges on the identical result.
        if let Err(e) = self.journal.append(&Record::Result {
            job: id,
            status: next.clone(),
        }) {
            self.metrics.journal_append_failures.fetch_add(1, Ordering::Relaxed);
            eprintln!("pres-svc: journal append (result, job {id}) failed: {e}");
        }
        let mut s = self.shared.lock();
        s.jobs.get_mut(&id).expect("job exists").status = next;
        s.busy -= 1;
        drop(s);
        self.idle.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pres_core::api::Pres;
    use pres_core::sketch::Mechanism;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pres-svc-queue-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn queue(dir: &std::path::Path, config: QueueConfig) -> JobQueue {
        let (store, _) = Store::open(dir.join("store")).unwrap();
        JobQueue::open(
            dir.join("journal.log"),
            Arc::new(store),
            Arc::new(Metrics::new()),
            config,
        )
        .unwrap()
    }

    fn recorded_sketch_bytes(bug: &str) -> Vec<u8> {
        let case = all_bugs().into_iter().find(|b| b.id == bug).unwrap();
        let program = case.program();
        let pres = Pres::new(Mechanism::Sync);
        let run = pres
            .record_until_failure(program.as_ref(), 0..5000)
            .expect("bug manifests in production");
        pres_core::codec::encode_sketch(&run.sketch)
    }

    fn drive(q: &JobQueue) {
        let pool = VthreadPool::new(8);
        q.drain();
        q.work(&pool);
        q.await_drained();
    }

    #[test]
    fn submit_execute_and_certificate_matches_in_process_reproduction() {
        let dir = scratch("endtoend");
        let q = queue(&dir, QueueConfig::default());
        let bytes = recorded_sketch_bytes("pbzip-order");
        let (digest, fresh) = q.store().put(&bytes).unwrap();
        assert!(fresh);
        let (id, created) = q.submit("pbzip-order", digest).unwrap();
        assert!(created);
        drive(&q);
        let JobStatus::Succeeded {
            certificate,
            attempts,
        } = q.status(id).unwrap()
        else {
            panic!("expected success, got {:?}", q.status(id));
        };
        assert!(attempts >= 1);

        // Byte-identical with the in-process facade on the same sketch.
        let case = all_bugs().into_iter().find(|b| b.id == "pbzip-order").unwrap();
        let program = case.program();
        let pres = Pres::new(Mechanism::Sync);
        let sketch = decode_sketch(&bytes).unwrap();
        let mut recorded = pres.record(program.as_ref(), sketch.meta.seed);
        recorded.sketch = sketch;
        let repro = pres.reproduce(program.as_ref(), &recorded);
        let expected = repro.certificate.unwrap().encode();
        assert_eq!(q.store().get(&certificate).unwrap().unwrap(), expected);
    }

    #[test]
    fn duplicate_submit_joins_the_existing_job() {
        let dir = scratch("dedup");
        let q = queue(&dir, QueueConfig::default());
        let bytes = recorded_sketch_bytes("pbzip-order");
        let (digest, _) = q.store().put(&bytes).unwrap();
        let (id1, created1) = q.submit("pbzip-order", digest).unwrap();
        let (id2, created2) = q.submit("pbzip-order", digest).unwrap();
        assert_eq!(id1, id2);
        assert!(created1);
        assert!(!created2);
    }

    #[test]
    fn unknown_bug_fails_cleanly() {
        let dir = scratch("unknown");
        let q = queue(&dir, QueueConfig::default());
        let (digest, _) = q.store().put(b"whatever").unwrap();
        let (id, _) = q.submit("no-such-bug", digest).unwrap();
        drive(&q);
        let JobStatus::Failed { message } = q.status(id).unwrap() else {
            panic!("expected failure");
        };
        assert!(message.contains("unknown bug"), "{message}");
    }

    #[test]
    fn undecodable_sketch_fails_cleanly() {
        let dir = scratch("garbage");
        let q = queue(&dir, QueueConfig::default());
        let (digest, _) = q.store().put(b"not a sketch container").unwrap();
        let (id, _) = q.submit("pbzip-order", digest).unwrap();
        drive(&q);
        assert!(matches!(q.status(id).unwrap(), JobStatus::Failed { .. }));
    }

    #[test]
    fn exhausted_budget_retries_with_backoff_then_goes_terminal() {
        let dir = scratch("retries");
        let config = QueueConfig {
            // A budget of one attempt cannot reproduce pbzip-order, so
            // every try exhausts and the retry ladder runs to the end.
            max_attempts: 1,
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            ..QueueConfig::default()
        };
        let q = queue(&dir, config);
        let bytes = recorded_sketch_bytes("pbzip-order");
        let (digest, _) = q.store().put(&bytes).unwrap();
        let (id, _) = q.submit("pbzip-order", digest).unwrap();
        drive(&q);
        assert!(
            matches!(q.status(id).unwrap(), JobStatus::Exhausted { .. }),
            "got {:?}",
            q.status(id)
        );
    }

    #[test]
    fn stolen_execution_is_byte_identical_and_resolves_at_the_origin() {
        let local_dir = scratch("steal-local");
        let origin_dir = scratch("steal-origin");
        let thief_dir = scratch("steal-thief");
        let bytes = recorded_sketch_bytes("pbzip-order");

        // Baseline: the certificate a local worker produces.
        let local = queue(&local_dir, QueueConfig::default());
        let (digest, _) = local.store().put(&bytes).unwrap();
        let (local_id, _) = local.submit("pbzip-order", digest).unwrap();
        drive(&local);
        let JobStatus::Succeeded {
            certificate: local_cert,
            ..
        } = local.status(local_id).unwrap()
        else {
            panic!("local run failed: {:?}", local.status(local_id));
        };

        // The same job stolen: origin leases it out, a thief with its
        // own store/cache/pool executes with the origin's retry
        // counter, and the terminal status lands through the origin's
        // normal resolve path.
        let origin = queue(&origin_dir, QueueConfig::default());
        let (digest, _) = origin.store().put(&bytes).unwrap();
        let (id, _) = origin.submit("pbzip-order", digest).unwrap();
        let handed = origin.steal_jobs(4);
        assert_eq!(handed.len(), 1);
        assert_eq!(handed[0].job, id);
        assert_eq!(handed[0].retries, 0);
        assert!(matches!(origin.status(id), Some(JobStatus::Running)));

        let thief = queue(&thief_dir, QueueConfig::default());
        thief.store().put(&bytes).unwrap();
        let pool = VthreadPool::new(8);
        let outcome = thief.execute_stolen(
            &handed[0].bug,
            handed[0].sketch,
            handed[0].retries,
            &pool,
        );
        let JobStatus::Succeeded {
            certificate: stolen_cert,
            ..
        } = outcome.clone()
        else {
            panic!("stolen run failed: {outcome:?}");
        };
        assert_eq!(
            stolen_cert, local_cert,
            "a thief must compute the certificate the origin would have"
        );

        assert!(origin.complete_stolen(id, outcome));
        assert!(matches!(
            origin.status(id),
            Some(JobStatus::Succeeded { .. })
        ));
        // A second report for the same job is a stale thief — rejected.
        assert!(!origin.complete_stolen(
            id,
            JobStatus::Failed {
                message: "stale".into()
            }
        ));
        // The lease released `busy`, so the drain completes immediately.
        origin.drain();
        origin.await_drained();
    }

    #[test]
    fn drain_reclaims_outstanding_steal_leases() {
        let dir = scratch("steal-drain");
        let q = queue(&dir, QueueConfig::default());
        let bytes = recorded_sketch_bytes("pbzip-order");
        let (digest, _) = q.store().put(&bytes).unwrap();
        let (id, _) = q.submit("pbzip-order", digest).unwrap();
        assert_eq!(q.steal_jobs(1).len(), 1);
        // The thief never reports. A drain must not wait on it: the
        // lease is reclaimed, the job re-queued (journaled for the next
        // start), and the late report rejected.
        q.drain();
        q.await_drained();
        assert!(matches!(
            q.status(id),
            Some(JobStatus::Queued { retries: 0 })
        ));
        assert!(!q.complete_stolen(
            id,
            JobStatus::Failed {
                message: "late".into()
            }
        ));
        // And a draining queue hands out nothing.
        assert!(q.steal_jobs(1).is_empty());
    }

    #[test]
    fn expired_steal_lease_is_reaped_back_into_the_ready_queue() {
        let dir = scratch("steal-reap");
        let config = QueueConfig {
            // lease = 2 * job_timeout + 2s headroom; zero timeout makes
            // the test's wait the 2s floor.
            job_timeout: Duration::ZERO,
            ..QueueConfig::default()
        };
        let q = queue(&dir, config);
        let bytes = recorded_sketch_bytes("pbzip-order");
        let (digest, _) = q.store().put(&bytes).unwrap();
        let (id, _) = q.submit("pbzip-order", digest).unwrap();
        assert_eq!(q.steal_jobs(1).len(), 1);
        q.reap_stolen();
        assert!(
            matches!(q.status(id), Some(JobStatus::Running)),
            "a live lease must not be reaped"
        );
        std::thread::sleep(Duration::from_millis(2100));
        q.reap_stolen();
        assert!(
            matches!(q.status(id), Some(JobStatus::Queued { retries: 0 })),
            "an expired lease re-queues the job, got {:?}",
            q.status(id)
        );
    }

    #[test]
    fn journal_replay_restores_results_and_requeues_unfinished_jobs() {
        let dir = scratch("restart");
        let bytes = recorded_sketch_bytes("pbzip-order");
        let (finished, unfinished, digest) = {
            let q = queue(&dir, QueueConfig::default());
            let (digest, _) = q.store().put(&bytes).unwrap();
            let (finished, _) = q.submit("pbzip-order", digest).unwrap();
            drive(&q);
            // A second job submitted after the drain's workers exited
            // never runs — it models a job in flight at crash time.
            let q2 = queue(&dir, QueueConfig::default());
            let (digest2, _) = q2.store().put(&bytes).unwrap();
            assert_eq!(digest2, digest);
            let (unfinished, created) = q2.submit("pbzip-app", digest).unwrap();
            assert!(created, "different bug, same sketch: distinct job");
            (finished, unfinished, digest)
        };
        let q = queue(&dir, QueueConfig::default());
        // The finished job's terminal status survived the restart.
        assert!(matches!(
            q.status(finished).unwrap(),
            JobStatus::Succeeded { .. }
        ));
        // The unfinished one came back queued, and dedup still routes a
        // resubmission onto it.
        assert!(matches!(
            q.status(unfinished).unwrap(),
            JobStatus::Queued { .. }
        ));
        let (rejoined, created) = q.submit("pbzip-app", digest).unwrap();
        assert_eq!(rejoined, unfinished);
        assert!(!created);
    }

    #[test]
    fn job_status_wire_roundtrip() {
        let statuses = [
            JobStatus::Queued { retries: 3 },
            JobStatus::Running,
            JobStatus::Succeeded {
                attempts: 42,
                certificate: crate::digest::sha256(b"c"),
            },
            JobStatus::Exhausted { attempts: 1000 },
            JobStatus::TimedOut { attempts: 12 },
            JobStatus::Failed {
                message: "nope".into(),
            },
        ];
        for status in statuses {
            let mut buf = Vec::new();
            status.encode(&mut buf).unwrap();
            let mut r = Reader(&buf);
            assert_eq!(JobStatus::decode(&mut r), Some(status));
            assert!(r.is_done());
        }
    }
}
