//! The daemon's length-prefixed binary protocol.
//!
//! One frame per message, either direction. Version 1 (the PR 5 wire
//! format, still served):
//!
//! ```text
//! +----+----+------+------+-------------+----------------+
//! | 'P'| 'S'| 0x01 | kind | length: u32 | payload bytes  |
//! +----+----+------+------+-------------+----------------+
//! ```
//!
//! Version 2 adds a per-frame `tag` between the header and the payload.
//! The daemon echoes the tag in the response so a client may pipeline many
//! outstanding requests on one connection and match responses out of
//! order:
//!
//! ```text
//! +----+----+------+------+-------------+----------+----------------+
//! | 'P'| 'S'| 0x02 | kind | length: u32 | tag: u32 | payload bytes  |
//! +----+----+------+------+-------------+----------+----------------+
//! ```
//!
//! The length covers the payload only (not the tag), so the v1 and v2
//! header walks differ only in the 4 extra tag bytes. Magic and version
//! are checked before the length is trusted; the length is checked against
//! a receiver-chosen cap before anything is allocated, so an adversarial
//! 4 GiB length prefix costs the receiver nothing. Kinds `0x01..` are
//! requests, `0x81..` responses, `0xFF` the error response. Unknown kinds
//! fail at message decode, not at frame framing — a future version can add
//! kinds without changing the frame walk.
//!
//! v2 also adds the streaming submit triple `SUBMIT_BEGIN` (bug id) /
//! `SUBMIT_CHUNK` (raw sketch bytes, no inner length prefix) /
//! `SUBMIT_END` (empty), all carrying the same tag. The server digests
//! chunks incrementally and spills them to a store staging file as they
//! arrive, so its peak memory per connection is one chunk, not one sketch;
//! only `SUBMIT_END` is answered (with the usual `Submitted` response).
//! A monolithic v1-style `SUBMIT` remains valid in a v2 frame.
//!
//! ## Cluster kinds
//!
//! The node-to-node layer ([`crate::cluster`]) speaks the same v2 frames.
//! `HELLO` carries a shared-secret auth token and must be the first frame
//! on a connection when the daemon was started with `--auth-token`
//! (mandatory on peer links). Object transfer between peers routes the
//! content-addressed store: `PEER_PUT_BEGIN` (expected digest) opens a
//! stream that reuses the `SUBMIT_CHUNK`/`SUBMIT_END` path — same tag,
//! same incremental-digest spill — so a multi-MB sketch never
//! materializes whole on the receiving node; `PEER_GET` / `PEER_STAT` /
//! `PEER_LIST` read a peer's **local** objects only (never re-routed, so
//! lookups cannot cycle). Work stealing uses `PEER_STEAL` (an idle node
//! asks a busy one for queued jobs) and `PEER_DONE` (the stolen job's
//! terminal status flows back to the origin, which owns the journal
//! record and the retry ladder).
//!
//! ## Error severity
//!
//! Decode failures split into two severities, and connection handling
//! differs by which side of the line an error falls on
//! ([`ProtoError::severity`]):
//!
//! * **Framing** errors — [`ProtoError::BadMagic`],
//!   [`ProtoError::BadVersion`], [`ProtoError::Oversized`] — mean the
//!   byte stream itself cannot be walked any further: frame boundaries are
//!   lost, so the server answers one final ERROR frame and drops the
//!   connection.
//! * **Payload** errors — [`ProtoError::UnknownKind`],
//!   [`ProtoError::BadPayload`], [`ProtoError::TooLarge`] — are confined
//!   to one well-framed message. The server answers a (tagged, on v2)
//!   ERROR response and keeps the connection: with pipelining, other
//!   requests in flight on the same connection are unaffected.
//!
//! Payload fields use [`crate::wire`]. Every decoder demands full
//! consumption ([`wire::Reader::is_done`]): trailing bytes are a protocol
//! error, never silently ignored.

use crate::digest::Digest;
use crate::queue::JobStatus;
use crate::wire::{self, Reader};
use std::io::{self, Read, Write};

/// Frame magic: the first two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"PS";
/// The original one-request-at-a-time protocol version.
pub const VERSION: u8 = 1;
/// The tagged, pipelined, streaming-submit protocol version.
pub const VERSION_V2: u8 = 2;
/// Default cap on accepted frame payloads (sketches are small; 64 MiB is
/// generous headroom, not an invitation).
pub const DEFAULT_MAX_FRAME: u32 = 64 << 20;
/// Default chunk size for streaming submits: large enough that framing
/// overhead vanishes, small enough that per-connection buffering is
/// negligible next to a multi-MB sketch.
pub const DEFAULT_CHUNK_BYTES: usize = 256 << 10;

const REQ_SUBMIT: u8 = 0x01;
const REQ_STATUS: u8 = 0x02;
const REQ_RESULT: u8 = 0x03;
const REQ_STATS: u8 = 0x04;
const REQ_SHUTDOWN: u8 = 0x05;
const REQ_SUBMIT_BEGIN: u8 = 0x06;
const REQ_SUBMIT_CHUNK: u8 = 0x07;
const REQ_SUBMIT_END: u8 = 0x08;
const REQ_HELLO: u8 = 0x09;
const REQ_PEER_PUT_BEGIN: u8 = 0x0A;
const REQ_PEER_GET: u8 = 0x0B;
const REQ_PEER_STAT: u8 = 0x0C;
const REQ_PEER_LIST: u8 = 0x0D;
const REQ_PEER_STEAL: u8 = 0x0E;
const REQ_PEER_DONE: u8 = 0x0F;
const RESP_SUBMIT: u8 = 0x81;
const RESP_STATUS: u8 = 0x82;
const RESP_RESULT: u8 = 0x83;
const RESP_STATS: u8 = 0x84;
const RESP_SHUTDOWN: u8 = 0x85;
const RESP_HELLO: u8 = 0x86;
const RESP_PEER_PUT: u8 = 0x87;
const RESP_PEER_OBJECT: u8 = 0x88;
const RESP_PEER_STAT: u8 = 0x89;
const RESP_PEER_LIST: u8 = 0x8A;
const RESP_PEER_JOBS: u8 = 0x8B;
const RESP_PEER_DONE: u8 = 0x8C;
const RESP_ERROR: u8 = 0xFF;

/// Why a frame or message failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The first two bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// A version this build does not speak.
    BadVersion(u8),
    /// Length prefix beyond the receiver's cap.
    Oversized { len: u32, max: u32 },
    /// A kind byte the message layer does not know.
    UnknownKind(u8),
    /// Payload failed field-level decoding (truncated field, trailing
    /// bytes, invalid UTF-8).
    BadPayload(&'static str),
    /// An outgoing payload too large for a `u32` length prefix — the
    /// checked-conversion refusal that replaces silent truncation.
    TooLarge(usize),
}

impl From<wire::LenOverflow> for ProtoError {
    fn from(e: wire::LenOverflow) -> ProtoError {
        ProtoError::TooLarge(e.0)
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds cap of {max}")
            }
            ProtoError::UnknownKind(k) => write!(f, "unknown message kind {k:#04x}"),
            ProtoError::BadPayload(what) => write!(f, "malformed payload: {what}"),
            ProtoError::TooLarge(n) => {
                write!(f, "payload of {n} bytes exceeds the u32 frame length")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// How much of the connection a [`ProtoError`] poisons — see the module
/// docs ("Error severity") for the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Frame boundaries are lost; answer once and drop the connection.
    Framing,
    /// One well-framed message was bad; answer it and keep the connection.
    Payload,
}

impl ProtoError {
    /// Classifies this error as connection-fatal framing corruption or a
    /// per-message payload problem.
    pub fn severity(&self) -> Severity {
        match self {
            ProtoError::BadMagic(_) | ProtoError::BadVersion(_) | ProtoError::Oversized { .. } => {
                Severity::Framing
            }
            ProtoError::UnknownKind(_) | ProtoError::BadPayload(_) | ProtoError::TooLarge(_) => {
                Severity::Payload
            }
        }
    }
}

/// A raw frame: kind plus opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub kind: u8,
    pub payload: Vec<u8>,
}

impl Frame {
    /// The full on-wire encoding. Panics on a payload beyond `u32::MAX`
    /// bytes — use [`Frame::write_to`] (which refuses with an error) on
    /// any path where the payload size is not already checked.
    pub fn encode(&self) -> Vec<u8> {
        let len = wire::check_len(self.payload.len())
            .expect("frame payload length checked at construction");
        let mut out = Vec::with_capacity(8 + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.kind);
        wire::put_u32(&mut out, len);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Writes the frame to a stream, refusing (with `InvalidInput`, not
    /// truncating) a payload the `u32` length prefix cannot describe.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        wire::check_len(self.payload.len()).map_err(io::Error::from)?;
        w.write_all(&self.encode())?;
        w.flush()
    }

    /// Reads one frame, enforcing `max_payload` before allocating.
    /// `Err(io)` covers transport failures (including read timeouts);
    /// protocol violations come back as `Ok(Err(proto))` so the caller can
    /// answer with an ERROR frame before hanging up.
    pub fn read_from(
        r: &mut impl Read,
        max_payload: u32,
    ) -> io::Result<Result<Frame, ProtoError>> {
        let mut head = [0u8; 8];
        r.read_exact(&mut head)?;
        if head[..2] != MAGIC {
            return Ok(Err(ProtoError::BadMagic([head[0], head[1]])));
        }
        if head[2] != VERSION {
            return Ok(Err(ProtoError::BadVersion(head[2])));
        }
        let kind = head[3];
        let len = u32::from_be_bytes(head[4..8].try_into().unwrap());
        if len > max_payload {
            return Ok(Err(ProtoError::Oversized {
                len,
                max: max_payload,
            }));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        Ok(Ok(Frame { kind, payload }))
    }
}

/// A version-2 frame: kind, echo tag, opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame2 {
    pub tag: u32,
    pub kind: u8,
    pub payload: Vec<u8>,
}

impl Frame2 {
    /// The full on-wire encoding. Panics on a payload beyond `u32::MAX`
    /// bytes — use [`Frame2::write_to`] (which refuses with an error) on
    /// any path where the payload size is not already checked.
    pub fn encode(&self) -> Vec<u8> {
        let len = wire::check_len(self.payload.len())
            .expect("frame payload length checked at construction");
        let mut out = Vec::with_capacity(12 + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION_V2);
        out.push(self.kind);
        wire::put_u32(&mut out, len);
        wire::put_u32(&mut out, self.tag);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Writes the frame to a stream, refusing (with `InvalidInput`, not
    /// truncating) a payload the `u32` length prefix cannot describe.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        wire::check_len(self.payload.len()).map_err(io::Error::from)?;
        w.write_all(&self.encode())?;
        w.flush()
    }
}

/// A frame of either protocol version, as read off one connection. The
/// sharded front end accepts both on the same port and mirrors the
/// request's version in its response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnyFrame {
    V1(Frame),
    V2(Frame2),
}

impl AnyFrame {
    /// The request/response kind byte, independent of version.
    pub fn kind(&self) -> u8 {
        match self {
            AnyFrame::V1(f) => f.kind,
            AnyFrame::V2(f) => f.kind,
        }
    }

    /// The echo tag: a v1 frame has none and decodes as tag 0.
    pub fn tag(&self) -> u32 {
        match self {
            AnyFrame::V1(_) => 0,
            AnyFrame::V2(f) => f.tag,
        }
    }

    pub fn payload(&self) -> &[u8] {
        match self {
            AnyFrame::V1(f) => &f.payload,
            AnyFrame::V2(f) => &f.payload,
        }
    }

    /// Incremental frame walk over a partially-received buffer.
    ///
    /// Returns `Ok(None)` when `buf` holds only a prefix of a frame (read
    /// more and retry), `Ok(Some((frame, consumed)))` when a complete frame
    /// starts at `buf[0]`, and `Err` on a framing violation (whose
    /// [`Severity`] says whether the stream is still walkable). The cap is
    /// enforced from the length prefix alone — an adversarial length never
    /// allocates.
    pub fn parse(buf: &[u8], max_payload: u32) -> Result<Option<(AnyFrame, usize)>, ProtoError> {
        if buf.len() < 8 {
            return Ok(None);
        }
        if buf[..2] != MAGIC {
            return Err(ProtoError::BadMagic([buf[0], buf[1]]));
        }
        let version = buf[2];
        if version != VERSION && version != VERSION_V2 {
            return Err(ProtoError::BadVersion(version));
        }
        let kind = buf[3];
        let len = u32::from_be_bytes(buf[4..8].try_into().unwrap());
        if len > max_payload {
            return Err(ProtoError::Oversized {
                len,
                max: max_payload,
            });
        }
        let head = if version == VERSION { 8 } else { 12 };
        let total = head + len as usize;
        if buf.len() < total {
            return Ok(None);
        }
        let payload = buf[head..total].to_vec();
        let frame = if version == VERSION {
            AnyFrame::V1(Frame { kind, payload })
        } else {
            let tag = u32::from_be_bytes(buf[8..12].try_into().unwrap());
            AnyFrame::V2(Frame2 { tag, kind, payload })
        };
        Ok(Some((frame, total)))
    }

    /// Blocking read of one frame of either version, mirroring
    /// [`Frame::read_from`]'s error contract.
    pub fn read_from(
        r: &mut impl Read,
        max_payload: u32,
    ) -> io::Result<Result<AnyFrame, ProtoError>> {
        let mut head = [0u8; 8];
        r.read_exact(&mut head)?;
        if head[..2] != MAGIC {
            return Ok(Err(ProtoError::BadMagic([head[0], head[1]])));
        }
        let version = head[2];
        if version != VERSION && version != VERSION_V2 {
            return Ok(Err(ProtoError::BadVersion(version)));
        }
        let kind = head[3];
        let len = u32::from_be_bytes(head[4..8].try_into().unwrap());
        if len > max_payload {
            return Ok(Err(ProtoError::Oversized {
                len,
                max: max_payload,
            }));
        }
        let tag = if version == VERSION_V2 {
            let mut t = [0u8; 4];
            r.read_exact(&mut t)?;
            u32::from_be_bytes(t)
        } else {
            0
        };
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        Ok(Ok(if version == VERSION {
            AnyFrame::V1(Frame { kind, payload })
        } else {
            AnyFrame::V2(Frame2 { tag, kind, payload })
        }))
    }
}

/// One queued job offered to a stealing peer: everything the thief needs
/// to run [`crate::queue::JobQueue::execute_stolen`] and nothing more.
/// `retries` rides along because the retry counter perturbs the
/// exploration seed — the thief must run the *same* attempt the origin
/// would have, or certificates stop being byte-identical across nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerJob {
    /// The job id in the *origin's* queue (echoed in `PEER_DONE`).
    pub job: u64,
    /// Bug id to reproduce.
    pub bug: String,
    /// Digest of the sketch object (fetched through the routed store).
    pub sketch: Digest,
    /// The origin-side retry counter at steal time.
    pub retries: u32,
}

impl PeerJob {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), ProtoError> {
        wire::put_u64(out, self.job);
        wire::put_str(out, &self.bug)?;
        wire::put_digest(out, &self.sketch);
        wire::put_u32(out, self.retries);
        Ok(())
    }

    fn decode(r: &mut Reader<'_>) -> Option<PeerJob> {
        Some(PeerJob {
            job: r.u64()?,
            bug: r.str()?.to_string(),
            sketch: r.digest()?,
            retries: r.u32()?,
        })
    }
}

/// A client→daemon message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Ingest a sketch and enqueue reproduction of `bug` from it.
    Submit { bug: String, sketch: Vec<u8> },
    /// Opens a streaming submit for `bug` on this frame's tag (v2 only).
    /// Not answered; the response arrives on [`Request::SubmitEnd`].
    SubmitBegin { bug: String },
    /// One chunk of the sketch opened by the same tag's `SubmitBegin`.
    /// The payload is the raw chunk bytes, no inner length prefix.
    SubmitChunk { data: Vec<u8> },
    /// Closes the stream; answered with the usual `Submitted` response.
    SubmitEnd,
    /// Where does job `job` stand?
    Status { job: u64 },
    /// The certificate bytes of a succeeded job.
    Result { job: u64 },
    /// The metrics snapshot, rendered.
    Stats,
    /// Drain and exit (the SIGTERM equivalent, deliverable over the wire).
    Shutdown,
    /// Authenticate the connection with a shared-secret token. Must be
    /// the first frame when the daemon enforces `--auth-token`.
    Hello { token: Vec<u8> },
    /// Opens a streaming peer object transfer on this frame's tag: the
    /// chunks arrive as [`Request::SubmitChunk`] / [`Request::SubmitEnd`]
    /// and must hash to `digest` or the object is refused.
    PeerPutBegin { digest: Digest },
    /// Fetch a peer's *local* copy of an object (never re-routed).
    PeerGet { digest: Digest },
    /// Does the peer hold a local copy of `digest`?
    PeerStat { digest: Digest },
    /// Every digest in the peer's local store (the repair pull phase).
    PeerList,
    /// Offer up to `max` queued jobs to this (idle) caller.
    PeerSteal { max: u32 },
    /// A stolen job's terminal status, reported back to its origin.
    PeerDone { job: u64, status: JobStatus },
}

impl Request {
    /// The kind byte plus encoded payload shared by both frame versions.
    fn encode_parts(&self) -> Result<(u8, Vec<u8>), ProtoError> {
        let (kind, payload) = match self {
            Request::Submit { bug, sketch } => {
                let mut p = Vec::new();
                wire::put_str(&mut p, bug)?;
                wire::put_bytes(&mut p, sketch)?;
                (REQ_SUBMIT, p)
            }
            Request::SubmitBegin { bug } => {
                let mut p = Vec::new();
                wire::put_str(&mut p, bug)?;
                (REQ_SUBMIT_BEGIN, p)
            }
            Request::SubmitChunk { data } => (REQ_SUBMIT_CHUNK, data.clone()),
            Request::SubmitEnd => (REQ_SUBMIT_END, Vec::new()),
            Request::Status { job } => {
                let mut p = Vec::new();
                wire::put_u64(&mut p, *job);
                (REQ_STATUS, p)
            }
            Request::Result { job } => {
                let mut p = Vec::new();
                wire::put_u64(&mut p, *job);
                (REQ_RESULT, p)
            }
            Request::Stats => (REQ_STATS, Vec::new()),
            Request::Shutdown => (REQ_SHUTDOWN, Vec::new()),
            Request::Hello { token } => {
                let mut p = Vec::new();
                wire::put_bytes(&mut p, token)?;
                (REQ_HELLO, p)
            }
            Request::PeerPutBegin { digest } => {
                let mut p = Vec::new();
                wire::put_digest(&mut p, digest);
                (REQ_PEER_PUT_BEGIN, p)
            }
            Request::PeerGet { digest } => {
                let mut p = Vec::new();
                wire::put_digest(&mut p, digest);
                (REQ_PEER_GET, p)
            }
            Request::PeerStat { digest } => {
                let mut p = Vec::new();
                wire::put_digest(&mut p, digest);
                (REQ_PEER_STAT, p)
            }
            Request::PeerList => (REQ_PEER_LIST, Vec::new()),
            Request::PeerSteal { max } => {
                let mut p = Vec::new();
                wire::put_u32(&mut p, *max);
                (REQ_PEER_STEAL, p)
            }
            Request::PeerDone { job, status } => {
                let mut p = Vec::new();
                wire::put_u64(&mut p, *job);
                status.encode(&mut p)?;
                (REQ_PEER_DONE, p)
            }
        };
        wire::check_len(payload.len())?;
        Ok((kind, payload))
    }

    /// Encodes into a v1 frame; a payload beyond what a `u32` length prefix
    /// can carry is a [`ProtoError::TooLarge`], never a truncated frame.
    pub fn to_frame(&self) -> Result<Frame, ProtoError> {
        let (kind, payload) = self.encode_parts()?;
        Ok(Frame { kind, payload })
    }

    /// Encodes into a v2 frame carrying `tag`.
    pub fn to_frame2(&self, tag: u32) -> Result<Frame2, ProtoError> {
        let (kind, payload) = self.encode_parts()?;
        Ok(Frame2 { tag, kind, payload })
    }

    /// The shared kind-dispatched payload decode.
    fn decode_parts(kind: u8, payload: &[u8]) -> Result<Request, ProtoError> {
        let mut r = Reader(payload);
        let bad = ProtoError::BadPayload;
        let req = match kind {
            REQ_SUBMIT => Request::Submit {
                bug: r.str().ok_or(bad("submit bug id"))?.to_string(),
                sketch: r.bytes().ok_or(bad("submit sketch bytes"))?.to_vec(),
            },
            REQ_SUBMIT_BEGIN => Request::SubmitBegin {
                bug: r.str().ok_or(bad("submit-begin bug id"))?.to_string(),
            },
            // The chunk payload is opaque bytes: consume it whole so the
            // trailing-bytes check below stays an invariant, not a case.
            REQ_SUBMIT_CHUNK => Request::SubmitChunk {
                data: r.take_rest().to_vec(),
            },
            REQ_SUBMIT_END => Request::SubmitEnd,
            REQ_STATUS => Request::Status {
                job: r.u64().ok_or(bad("status job id"))?,
            },
            REQ_RESULT => Request::Result {
                job: r.u64().ok_or(bad("result job id"))?,
            },
            REQ_STATS => Request::Stats,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_HELLO => Request::Hello {
                token: r.bytes().ok_or(bad("hello token"))?.to_vec(),
            },
            REQ_PEER_PUT_BEGIN => Request::PeerPutBegin {
                digest: r.digest().ok_or(bad("peer-put digest"))?,
            },
            REQ_PEER_GET => Request::PeerGet {
                digest: r.digest().ok_or(bad("peer-get digest"))?,
            },
            REQ_PEER_STAT => Request::PeerStat {
                digest: r.digest().ok_or(bad("peer-stat digest"))?,
            },
            REQ_PEER_LIST => Request::PeerList,
            REQ_PEER_STEAL => Request::PeerSteal {
                max: r.u32().ok_or(bad("peer-steal max"))?,
            },
            REQ_PEER_DONE => Request::PeerDone {
                job: r.u64().ok_or(bad("peer-done job id"))?,
                status: JobStatus::decode(&mut r).ok_or(bad("peer-done status"))?,
            },
            k => return Err(ProtoError::UnknownKind(k)),
        };
        if !r.is_done() {
            return Err(bad("trailing bytes"));
        }
        Ok(req)
    }

    /// Decodes from a v1 frame.
    pub fn from_frame(frame: &Frame) -> Result<Request, ProtoError> {
        Request::decode_parts(frame.kind, &frame.payload)
    }

    /// Decodes from a frame of either version.
    pub fn from_any(frame: &AnyFrame) -> Result<Request, ProtoError> {
        Request::decode_parts(frame.kind(), frame.payload())
    }
}

/// A daemon→client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The submitted sketch's digest and job. `fresh_object` /
    /// `fresh_job` report dedup: `false` means the store / queue already
    /// had it.
    Submitted {
        job: u64,
        sketch: Digest,
        fresh_object: bool,
        fresh_job: bool,
    },
    /// A job's status (`None` = unknown job id — not an error, a query).
    Status { status: Option<JobStatus> },
    /// Certificate bytes of a succeeded job.
    Result { certificate: Vec<u8> },
    /// Rendered metrics.
    Stats { text: String },
    /// Shutdown acknowledged; the daemon drains after answering.
    ShuttingDown,
    /// The connection is authenticated (or the daemon runs open).
    HelloOk,
    /// A peer object transfer landed. `fresh` is `false` when the store
    /// already held the object (dedup, not an error).
    PeerPut { digest: Digest, fresh: bool },
    /// A peer's local copy of an object, or `None` if it has none.
    PeerObject { body: Option<Vec<u8>> },
    /// Whether the peer holds a local copy.
    PeerStatIs { present: bool },
    /// Every digest in the peer's local store.
    PeerDigests { digests: Vec<Digest> },
    /// Queued jobs handed to a stealing peer (possibly empty).
    PeerJobs { jobs: Vec<PeerJob> },
    /// Whether the origin accepted a stolen job's result (`false` =
    /// unknown job or expired lease; the origin re-ran or will re-run it).
    PeerDoneOk { accepted: bool },
    /// The request could not be served.
    Error { message: String },
}

impl Response {
    /// The kind byte plus encoded payload shared by both frame versions.
    fn encode_parts(&self) -> Result<(u8, Vec<u8>), ProtoError> {
        let (kind, payload) = match self {
            Response::Submitted {
                job,
                sketch,
                fresh_object,
                fresh_job,
            } => {
                let mut p = Vec::new();
                wire::put_u64(&mut p, *job);
                wire::put_digest(&mut p, sketch);
                p.push(u8::from(*fresh_object));
                p.push(u8::from(*fresh_job));
                (RESP_SUBMIT, p)
            }
            Response::Status { status } => {
                let mut p = Vec::new();
                match status {
                    None => p.push(0),
                    Some(s) => {
                        p.push(1);
                        s.encode(&mut p)?;
                    }
                }
                (RESP_STATUS, p)
            }
            Response::Result { certificate } => {
                let mut p = Vec::new();
                wire::put_bytes(&mut p, certificate)?;
                (RESP_RESULT, p)
            }
            Response::Stats { text } => {
                let mut p = Vec::new();
                wire::put_str(&mut p, text)?;
                (RESP_STATS, p)
            }
            Response::ShuttingDown => (RESP_SHUTDOWN, Vec::new()),
            Response::HelloOk => (RESP_HELLO, Vec::new()),
            Response::PeerPut { digest, fresh } => {
                let mut p = Vec::new();
                wire::put_digest(&mut p, digest);
                p.push(u8::from(*fresh));
                (RESP_PEER_PUT, p)
            }
            Response::PeerObject { body } => {
                let mut p = Vec::new();
                match body {
                    None => p.push(0),
                    Some(bytes) => {
                        p.push(1);
                        wire::put_bytes(&mut p, bytes)?;
                    }
                }
                (RESP_PEER_OBJECT, p)
            }
            Response::PeerStatIs { present } => (RESP_PEER_STAT, vec![u8::from(*present)]),
            Response::PeerDigests { digests } => {
                let mut p = Vec::new();
                wire::put_u32(
                    &mut p,
                    u32::try_from(digests.len()).map_err(|_| ProtoError::TooLarge(digests.len()))?,
                );
                for d in digests {
                    wire::put_digest(&mut p, d);
                }
                (RESP_PEER_LIST, p)
            }
            Response::PeerJobs { jobs } => {
                let mut p = Vec::new();
                wire::put_u32(
                    &mut p,
                    u32::try_from(jobs.len()).map_err(|_| ProtoError::TooLarge(jobs.len()))?,
                );
                for job in jobs {
                    job.encode(&mut p)?;
                }
                (RESP_PEER_JOBS, p)
            }
            Response::PeerDoneOk { accepted } => (RESP_PEER_DONE, vec![u8::from(*accepted)]),
            Response::Error { message } => {
                let mut p = Vec::new();
                wire::put_str(&mut p, message)?;
                (RESP_ERROR, p)
            }
        };
        wire::check_len(payload.len())?;
        Ok((kind, payload))
    }

    /// Encodes into a v1 frame; a payload beyond what a `u32` length prefix
    /// can carry is a [`ProtoError::TooLarge`], never a truncated frame.
    pub fn to_frame(&self) -> Result<Frame, ProtoError> {
        let (kind, payload) = self.encode_parts()?;
        Ok(Frame { kind, payload })
    }

    /// Encodes into a v2 frame echoing `tag`.
    pub fn to_frame2(&self, tag: u32) -> Result<Frame2, ProtoError> {
        let (kind, payload) = self.encode_parts()?;
        Ok(Frame2 { tag, kind, payload })
    }

    /// The shared kind-dispatched payload decode.
    fn decode_parts(kind: u8, payload: &[u8]) -> Result<Response, ProtoError> {
        let mut r = Reader(payload);
        let bad = ProtoError::BadPayload;
        let resp = match kind {
            RESP_SUBMIT => Response::Submitted {
                job: r.u64().ok_or(bad("submitted job id"))?,
                sketch: r.digest().ok_or(bad("submitted digest"))?,
                fresh_object: r.u8().ok_or(bad("submitted fresh_object"))? != 0,
                fresh_job: r.u8().ok_or(bad("submitted fresh_job"))? != 0,
            },
            RESP_STATUS => Response::Status {
                status: match r.u8().ok_or(bad("status presence byte"))? {
                    0 => None,
                    1 => Some(JobStatus::decode(&mut r).ok_or(bad("status body"))?),
                    _ => return Err(bad("status presence byte")),
                },
            },
            RESP_RESULT => Response::Result {
                certificate: r.bytes().ok_or(bad("result certificate"))?.to_vec(),
            },
            RESP_STATS => Response::Stats {
                text: r.str().ok_or(bad("stats text"))?.to_string(),
            },
            RESP_SHUTDOWN => Response::ShuttingDown,
            RESP_HELLO => Response::HelloOk,
            RESP_PEER_PUT => Response::PeerPut {
                digest: r.digest().ok_or(bad("peer-put digest"))?,
                fresh: r.u8().ok_or(bad("peer-put fresh byte"))? != 0,
            },
            RESP_PEER_OBJECT => Response::PeerObject {
                body: match r.u8().ok_or(bad("peer-object presence byte"))? {
                    0 => None,
                    1 => Some(r.bytes().ok_or(bad("peer-object bytes"))?.to_vec()),
                    _ => return Err(bad("peer-object presence byte")),
                },
            },
            RESP_PEER_STAT => Response::PeerStatIs {
                present: r.u8().ok_or(bad("peer-stat presence byte"))? != 0,
            },
            RESP_PEER_LIST => {
                let count = r.u32().ok_or(bad("peer-list count"))?;
                // No up-front reservation: an adversarial count fails on
                // the first missing digest, having allocated nothing.
                let mut digests = Vec::new();
                for _ in 0..count {
                    digests.push(r.digest().ok_or(bad("peer-list digest"))?);
                }
                Response::PeerDigests { digests }
            }
            RESP_PEER_JOBS => {
                let count = r.u32().ok_or(bad("peer-jobs count"))?;
                let mut jobs = Vec::new();
                for _ in 0..count {
                    jobs.push(PeerJob::decode(&mut r).ok_or(bad("peer-jobs entry"))?);
                }
                Response::PeerJobs { jobs }
            }
            RESP_PEER_DONE => Response::PeerDoneOk {
                accepted: r.u8().ok_or(bad("peer-done accepted byte"))? != 0,
            },
            RESP_ERROR => Response::Error {
                message: r.str().ok_or(bad("error message"))?.to_string(),
            },
            k => return Err(ProtoError::UnknownKind(k)),
        };
        if !r.is_done() {
            return Err(bad("trailing bytes"));
        }
        Ok(resp)
    }

    /// Decodes from a v1 frame.
    pub fn from_frame(frame: &Frame) -> Result<Response, ProtoError> {
        Response::decode_parts(frame.kind, &frame.payload)
    }

    /// Decodes from a frame of either version.
    pub fn from_any(frame: &AnyFrame) -> Result<Response, ProtoError> {
        Response::decode_parts(frame.kind(), frame.payload())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::sha256;

    #[test]
    fn frame_roundtrip() {
        let frame = Frame {
            kind: REQ_SUBMIT,
            payload: b"hello".to_vec(),
        };
        let bytes = frame.encode();
        let mut cursor = &bytes[..];
        let back = Frame::read_from(&mut cursor, DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        assert_eq!(back, frame);
        assert!(cursor.is_empty());
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut bytes = Frame {
            kind: REQ_STATS,
            payload: vec![],
        }
        .encode();
        bytes[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        let err = Frame::read_from(&mut &bytes[..], 1024).unwrap().unwrap_err();
        assert!(matches!(err, ProtoError::Oversized { .. }));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = Frame {
            kind: REQ_STATS,
            payload: vec![],
        }
        .encode();
        bytes[0] = b'X';
        assert!(matches!(
            Frame::read_from(&mut &bytes[..], 1024).unwrap().unwrap_err(),
            ProtoError::BadMagic(_)
        ));
        let mut bytes = Frame {
            kind: REQ_STATS,
            payload: vec![],
        }
        .encode();
        bytes[2] = 9;
        assert!(matches!(
            Frame::read_from(&mut &bytes[..], 1024).unwrap().unwrap_err(),
            ProtoError::BadVersion(9)
        ));
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let bytes = Frame {
            kind: REQ_SUBMIT,
            payload: b"payload".to_vec(),
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(
                Frame::read_from(&mut &bytes[..cut], DEFAULT_MAX_FRAME).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn request_and_response_roundtrip() {
        let requests = [
            Request::Submit {
                bug: "pbzip-order".into(),
                sketch: vec![1, 2, 3],
            },
            Request::Status { job: 7 },
            Request::Result { job: u64::MAX },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in requests {
            assert_eq!(Request::from_frame(&req.to_frame().unwrap()).unwrap(), req);
        }
        let responses = [
            Response::Submitted {
                job: 1,
                sketch: sha256(b"s"),
                fresh_object: true,
                fresh_job: false,
            },
            Response::Status { status: None },
            Response::Status {
                status: Some(JobStatus::Running),
            },
            Response::Result {
                certificate: vec![0; 64],
            },
            Response::Stats {
                text: "everything is fine".into(),
            },
            Response::ShuttingDown,
            Response::Error {
                message: "unknown bug".into(),
            },
        ];
        for resp in responses {
            assert_eq!(Response::from_frame(&resp.to_frame().unwrap()).unwrap(), resp);
        }
    }

    #[test]
    fn frame2_roundtrips_through_both_readers() {
        let frame = Frame2 {
            tag: 0xdead_beef,
            kind: REQ_SUBMIT_CHUNK,
            payload: b"chunk bytes".to_vec(),
        };
        let bytes = frame.encode();
        // Blocking reader.
        let got = AnyFrame::read_from(&mut &bytes[..], DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        assert_eq!(got, AnyFrame::V2(frame.clone()));
        assert_eq!(got.tag(), 0xdead_beef);
        // Incremental parser.
        let (got, used) = AnyFrame::parse(&bytes, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(got, AnyFrame::V2(frame));
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn incremental_parse_handles_partial_and_back_to_back_frames() {
        let a = Frame2 {
            tag: 1,
            kind: REQ_STATS,
            payload: vec![],
        }
        .encode();
        let b = Frame {
            kind: REQ_STATUS,
            payload: Request::Status { job: 9 }.to_frame().unwrap().payload,
        }
        .encode();
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        // Every prefix short of frame A is "need more bytes".
        for cut in 0..a.len() {
            assert_eq!(
                AnyFrame::parse(&stream[..cut], DEFAULT_MAX_FRAME).unwrap(),
                None,
                "cut at {cut}"
            );
        }
        // A complete first frame parses without touching the second.
        let (first, used) = AnyFrame::parse(&stream, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(used, a.len());
        assert_eq!(first.tag(), 1);
        let (second, used2) = AnyFrame::parse(&stream[used..], DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        assert_eq!(used2, b.len());
        assert!(matches!(second, AnyFrame::V1(_)));
        assert_eq!(second.tag(), 0);
    }

    #[test]
    fn severity_splits_framing_from_payload_errors() {
        for (err, want) in [
            (ProtoError::BadMagic(*b"XX"), Severity::Framing),
            (ProtoError::BadVersion(3), Severity::Framing),
            (ProtoError::Oversized { len: 9, max: 1 }, Severity::Framing),
            (ProtoError::UnknownKind(0x42), Severity::Payload),
            (ProtoError::BadPayload("x"), Severity::Payload),
            (ProtoError::TooLarge(1 << 40), Severity::Payload),
        ] {
            assert_eq!(err.severity(), want, "{err}");
        }
    }

    #[test]
    fn streaming_requests_roundtrip_tagged() {
        let reqs = [
            Request::SubmitBegin {
                bug: "pbzip-order".into(),
            },
            Request::SubmitChunk {
                data: vec![7; 1000],
            },
            Request::SubmitEnd,
        ];
        for req in reqs {
            let f2 = req.to_frame2(41).unwrap();
            assert_eq!(f2.tag, 41);
            let any = AnyFrame::V2(f2);
            assert_eq!(Request::from_any(&any).unwrap(), req);
        }
        // An empty chunk is legal framing (the decoder consumes the rest,
        // which may be nothing).
        let empty = Request::SubmitChunk { data: vec![] };
        assert_eq!(
            Request::from_any(&AnyFrame::V2(empty.to_frame2(0).unwrap())).unwrap(),
            empty
        );
    }

    #[test]
    fn responses_echo_tags_in_v2_frames() {
        let resp = Response::Status { status: None };
        let f2 = resp.to_frame2(0xfeed).unwrap();
        assert_eq!(f2.tag, 0xfeed);
        assert_eq!(
            Response::from_any(&AnyFrame::V2(f2.clone())).unwrap(),
            resp
        );
        // Same payload bytes as the v1 encoding — only the header differs.
        assert_eq!(f2.payload, resp.to_frame().unwrap().payload);
    }

    #[test]
    fn v1_reader_still_rejects_version_2() {
        // The legacy blocking front end speaks v1 only; a v2 frame at it
        // is a framing error, not a crash.
        let bytes = Frame2 {
            tag: 5,
            kind: REQ_STATS,
            payload: vec![],
        }
        .encode();
        assert!(matches!(
            Frame::read_from(&mut &bytes[..], 1024).unwrap().unwrap_err(),
            ProtoError::BadVersion(2)
        ));
    }

    #[test]
    fn cluster_requests_and_responses_roundtrip() {
        let requests = [
            Request::Hello {
                token: b"sesame".to_vec(),
            },
            Request::Hello { token: vec![] },
            Request::PeerPutBegin {
                digest: sha256(b"obj"),
            },
            Request::PeerGet {
                digest: sha256(b"obj"),
            },
            Request::PeerStat {
                digest: sha256(b"obj"),
            },
            Request::PeerList,
            Request::PeerSteal { max: 4 },
            Request::PeerDone {
                job: 9,
                status: JobStatus::Succeeded {
                    attempts: 3,
                    certificate: sha256(b"cert"),
                },
            },
        ];
        for req in requests {
            assert_eq!(Request::from_frame(&req.to_frame().unwrap()).unwrap(), req);
            let any = AnyFrame::V2(req.to_frame2(77).unwrap());
            assert_eq!(any.tag(), 77);
            assert_eq!(Request::from_any(&any).unwrap(), req);
        }
        let responses = [
            Response::HelloOk,
            Response::PeerPut {
                digest: sha256(b"obj"),
                fresh: true,
            },
            Response::PeerObject { body: None },
            Response::PeerObject {
                body: Some(vec![7; 100]),
            },
            Response::PeerStatIs { present: false },
            Response::PeerDigests { digests: vec![] },
            Response::PeerDigests {
                digests: vec![sha256(b"a"), sha256(b"b")],
            },
            Response::PeerJobs {
                jobs: vec![PeerJob {
                    job: 12,
                    bug: "pbzip-order".into(),
                    sketch: sha256(b"s"),
                    retries: 2,
                }],
            },
            Response::PeerJobs { jobs: vec![] },
            Response::PeerDoneOk { accepted: true },
        ];
        for resp in responses {
            assert_eq!(Response::from_frame(&resp.to_frame().unwrap()).unwrap(), resp);
        }
    }

    #[test]
    fn peer_list_with_lying_count_is_rejected_without_allocation() {
        // count says 2^32-1 digests, body holds one: decode must fail on
        // the missing second digest, not allocate count * 32 bytes.
        let mut payload = Vec::new();
        crate::wire::put_u32(&mut payload, u32::MAX);
        crate::wire::put_digest(&mut payload, &sha256(b"only"));
        let frame = Frame {
            kind: RESP_PEER_LIST,
            payload,
        };
        assert!(matches!(
            Response::from_frame(&frame).unwrap_err(),
            ProtoError::BadPayload(_)
        ));
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_are_rejected() {
        let frame = Frame {
            kind: 0x42,
            payload: vec![],
        };
        assert_eq!(
            Request::from_frame(&frame).unwrap_err(),
            ProtoError::UnknownKind(0x42)
        );
        let mut frame = Request::Stats.to_frame().unwrap();
        frame.payload.push(0);
        assert!(matches!(
            Request::from_frame(&frame).unwrap_err(),
            ProtoError::BadPayload(_)
        ));
    }
}
