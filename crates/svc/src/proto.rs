//! The daemon's length-prefixed binary protocol.
//!
//! One frame per message, either direction:
//!
//! ```text
//! +----+----+---------+------+-------------+----------------+
//! | 'P'| 'S'| version | kind | length: u32 | payload bytes  |
//! +----+----+---------+------+-------------+----------------+
//! ```
//!
//! Magic and version are checked before the length is trusted; the length
//! is checked against a receiver-chosen cap before anything is allocated,
//! so an adversarial 4 GiB length prefix costs the receiver nothing. Kinds
//! `0x01..` are requests, `0x81..` responses, `0xFF` the error response.
//! Unknown kinds fail at message decode, not at frame framing — a future
//! version can add kinds without changing the frame walk.
//!
//! Payload fields use [`crate::wire`]. Every decoder demands full
//! consumption ([`wire::Reader::is_done`]): trailing bytes are a protocol
//! error, never silently ignored.

use crate::digest::Digest;
use crate::queue::JobStatus;
use crate::wire::{self, Reader};
use std::io::{self, Read, Write};

/// Frame magic: the first two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"PS";
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Default cap on accepted frame payloads (sketches are small; 64 MiB is
/// generous headroom, not an invitation).
pub const DEFAULT_MAX_FRAME: u32 = 64 << 20;

const REQ_SUBMIT: u8 = 0x01;
const REQ_STATUS: u8 = 0x02;
const REQ_RESULT: u8 = 0x03;
const REQ_STATS: u8 = 0x04;
const REQ_SHUTDOWN: u8 = 0x05;
const RESP_SUBMIT: u8 = 0x81;
const RESP_STATUS: u8 = 0x82;
const RESP_RESULT: u8 = 0x83;
const RESP_STATS: u8 = 0x84;
const RESP_SHUTDOWN: u8 = 0x85;
const RESP_ERROR: u8 = 0xFF;

/// Why a frame or message failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The first two bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// A version this build does not speak.
    BadVersion(u8),
    /// Length prefix beyond the receiver's cap.
    Oversized { len: u32, max: u32 },
    /// A kind byte the message layer does not know.
    UnknownKind(u8),
    /// Payload failed field-level decoding (truncated field, trailing
    /// bytes, invalid UTF-8).
    BadPayload(&'static str),
    /// An outgoing payload too large for a `u32` length prefix — the
    /// checked-conversion refusal that replaces silent truncation.
    TooLarge(usize),
}

impl From<wire::LenOverflow> for ProtoError {
    fn from(e: wire::LenOverflow) -> ProtoError {
        ProtoError::TooLarge(e.0)
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds cap of {max}")
            }
            ProtoError::UnknownKind(k) => write!(f, "unknown message kind {k:#04x}"),
            ProtoError::BadPayload(what) => write!(f, "malformed payload: {what}"),
            ProtoError::TooLarge(n) => {
                write!(f, "payload of {n} bytes exceeds the u32 frame length")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// A raw frame: kind plus opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub kind: u8,
    pub payload: Vec<u8>,
}

impl Frame {
    /// The full on-wire encoding. Panics on a payload beyond `u32::MAX`
    /// bytes — use [`Frame::write_to`] (which refuses with an error) on
    /// any path where the payload size is not already checked.
    pub fn encode(&self) -> Vec<u8> {
        let len = wire::check_len(self.payload.len())
            .expect("frame payload length checked at construction");
        let mut out = Vec::with_capacity(8 + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.kind);
        wire::put_u32(&mut out, len);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Writes the frame to a stream, refusing (with `InvalidInput`, not
    /// truncating) a payload the `u32` length prefix cannot describe.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        wire::check_len(self.payload.len()).map_err(io::Error::from)?;
        w.write_all(&self.encode())?;
        w.flush()
    }

    /// Reads one frame, enforcing `max_payload` before allocating.
    /// `Err(io)` covers transport failures (including read timeouts);
    /// protocol violations come back as `Ok(Err(proto))` so the caller can
    /// answer with an ERROR frame before hanging up.
    pub fn read_from(
        r: &mut impl Read,
        max_payload: u32,
    ) -> io::Result<Result<Frame, ProtoError>> {
        let mut head = [0u8; 8];
        r.read_exact(&mut head)?;
        if head[..2] != MAGIC {
            return Ok(Err(ProtoError::BadMagic([head[0], head[1]])));
        }
        if head[2] != VERSION {
            return Ok(Err(ProtoError::BadVersion(head[2])));
        }
        let kind = head[3];
        let len = u32::from_be_bytes(head[4..8].try_into().unwrap());
        if len > max_payload {
            return Ok(Err(ProtoError::Oversized {
                len,
                max: max_payload,
            }));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        Ok(Ok(Frame { kind, payload }))
    }
}

/// A client→daemon message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Ingest a sketch and enqueue reproduction of `bug` from it.
    Submit { bug: String, sketch: Vec<u8> },
    /// Where does job `job` stand?
    Status { job: u64 },
    /// The certificate bytes of a succeeded job.
    Result { job: u64 },
    /// The metrics snapshot, rendered.
    Stats,
    /// Drain and exit (the SIGTERM equivalent, deliverable over the wire).
    Shutdown,
}

impl Request {
    /// Encodes into a frame; a payload beyond what a `u32` length prefix
    /// can carry is a [`ProtoError::TooLarge`], never a truncated frame.
    pub fn to_frame(&self) -> Result<Frame, ProtoError> {
        let (kind, payload) = match self {
            Request::Submit { bug, sketch } => {
                let mut p = Vec::new();
                wire::put_str(&mut p, bug)?;
                wire::put_bytes(&mut p, sketch)?;
                (REQ_SUBMIT, p)
            }
            Request::Status { job } => {
                let mut p = Vec::new();
                wire::put_u64(&mut p, *job);
                (REQ_STATUS, p)
            }
            Request::Result { job } => {
                let mut p = Vec::new();
                wire::put_u64(&mut p, *job);
                (REQ_RESULT, p)
            }
            Request::Stats => (REQ_STATS, Vec::new()),
            Request::Shutdown => (REQ_SHUTDOWN, Vec::new()),
        };
        wire::check_len(payload.len())?;
        Ok(Frame { kind, payload })
    }

    /// Decodes from a frame.
    pub fn from_frame(frame: &Frame) -> Result<Request, ProtoError> {
        let mut r = Reader(&frame.payload);
        let bad = ProtoError::BadPayload;
        let req = match frame.kind {
            REQ_SUBMIT => Request::Submit {
                bug: r.str().ok_or(bad("submit bug id"))?.to_string(),
                sketch: r.bytes().ok_or(bad("submit sketch bytes"))?.to_vec(),
            },
            REQ_STATUS => Request::Status {
                job: r.u64().ok_or(bad("status job id"))?,
            },
            REQ_RESULT => Request::Result {
                job: r.u64().ok_or(bad("result job id"))?,
            },
            REQ_STATS => Request::Stats,
            REQ_SHUTDOWN => Request::Shutdown,
            k => return Err(ProtoError::UnknownKind(k)),
        };
        if !r.is_done() {
            return Err(bad("trailing bytes"));
        }
        Ok(req)
    }
}

/// A daemon→client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The submitted sketch's digest and job. `fresh_object` /
    /// `fresh_job` report dedup: `false` means the store / queue already
    /// had it.
    Submitted {
        job: u64,
        sketch: Digest,
        fresh_object: bool,
        fresh_job: bool,
    },
    /// A job's status (`None` = unknown job id — not an error, a query).
    Status { status: Option<JobStatus> },
    /// Certificate bytes of a succeeded job.
    Result { certificate: Vec<u8> },
    /// Rendered metrics.
    Stats { text: String },
    /// Shutdown acknowledged; the daemon drains after answering.
    ShuttingDown,
    /// The request could not be served.
    Error { message: String },
}

impl Response {
    /// Encodes into a frame; a payload beyond what a `u32` length prefix
    /// can carry is a [`ProtoError::TooLarge`], never a truncated frame.
    pub fn to_frame(&self) -> Result<Frame, ProtoError> {
        let (kind, payload) = match self {
            Response::Submitted {
                job,
                sketch,
                fresh_object,
                fresh_job,
            } => {
                let mut p = Vec::new();
                wire::put_u64(&mut p, *job);
                wire::put_digest(&mut p, sketch);
                p.push(u8::from(*fresh_object));
                p.push(u8::from(*fresh_job));
                (RESP_SUBMIT, p)
            }
            Response::Status { status } => {
                let mut p = Vec::new();
                match status {
                    None => p.push(0),
                    Some(s) => {
                        p.push(1);
                        s.encode(&mut p)?;
                    }
                }
                (RESP_STATUS, p)
            }
            Response::Result { certificate } => {
                let mut p = Vec::new();
                wire::put_bytes(&mut p, certificate)?;
                (RESP_RESULT, p)
            }
            Response::Stats { text } => {
                let mut p = Vec::new();
                wire::put_str(&mut p, text)?;
                (RESP_STATS, p)
            }
            Response::ShuttingDown => (RESP_SHUTDOWN, Vec::new()),
            Response::Error { message } => {
                let mut p = Vec::new();
                wire::put_str(&mut p, message)?;
                (RESP_ERROR, p)
            }
        };
        wire::check_len(payload.len())?;
        Ok(Frame { kind, payload })
    }

    /// Decodes from a frame.
    pub fn from_frame(frame: &Frame) -> Result<Response, ProtoError> {
        let mut r = Reader(&frame.payload);
        let bad = ProtoError::BadPayload;
        let resp = match frame.kind {
            RESP_SUBMIT => Response::Submitted {
                job: r.u64().ok_or(bad("submitted job id"))?,
                sketch: r.digest().ok_or(bad("submitted digest"))?,
                fresh_object: r.u8().ok_or(bad("submitted fresh_object"))? != 0,
                fresh_job: r.u8().ok_or(bad("submitted fresh_job"))? != 0,
            },
            RESP_STATUS => Response::Status {
                status: match r.u8().ok_or(bad("status presence byte"))? {
                    0 => None,
                    1 => Some(JobStatus::decode(&mut r).ok_or(bad("status body"))?),
                    _ => return Err(bad("status presence byte")),
                },
            },
            RESP_RESULT => Response::Result {
                certificate: r.bytes().ok_or(bad("result certificate"))?.to_vec(),
            },
            RESP_STATS => Response::Stats {
                text: r.str().ok_or(bad("stats text"))?.to_string(),
            },
            RESP_SHUTDOWN => Response::ShuttingDown,
            RESP_ERROR => Response::Error {
                message: r.str().ok_or(bad("error message"))?.to_string(),
            },
            k => return Err(ProtoError::UnknownKind(k)),
        };
        if !r.is_done() {
            return Err(bad("trailing bytes"));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::sha256;

    #[test]
    fn frame_roundtrip() {
        let frame = Frame {
            kind: REQ_SUBMIT,
            payload: b"hello".to_vec(),
        };
        let bytes = frame.encode();
        let mut cursor = &bytes[..];
        let back = Frame::read_from(&mut cursor, DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        assert_eq!(back, frame);
        assert!(cursor.is_empty());
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut bytes = Frame {
            kind: REQ_STATS,
            payload: vec![],
        }
        .encode();
        bytes[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        let err = Frame::read_from(&mut &bytes[..], 1024).unwrap().unwrap_err();
        assert!(matches!(err, ProtoError::Oversized { .. }));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = Frame {
            kind: REQ_STATS,
            payload: vec![],
        }
        .encode();
        bytes[0] = b'X';
        assert!(matches!(
            Frame::read_from(&mut &bytes[..], 1024).unwrap().unwrap_err(),
            ProtoError::BadMagic(_)
        ));
        let mut bytes = Frame {
            kind: REQ_STATS,
            payload: vec![],
        }
        .encode();
        bytes[2] = 9;
        assert!(matches!(
            Frame::read_from(&mut &bytes[..], 1024).unwrap().unwrap_err(),
            ProtoError::BadVersion(9)
        ));
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let bytes = Frame {
            kind: REQ_SUBMIT,
            payload: b"payload".to_vec(),
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(
                Frame::read_from(&mut &bytes[..cut], DEFAULT_MAX_FRAME).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn request_and_response_roundtrip() {
        let requests = [
            Request::Submit {
                bug: "pbzip-order".into(),
                sketch: vec![1, 2, 3],
            },
            Request::Status { job: 7 },
            Request::Result { job: u64::MAX },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in requests {
            assert_eq!(Request::from_frame(&req.to_frame().unwrap()).unwrap(), req);
        }
        let responses = [
            Response::Submitted {
                job: 1,
                sketch: sha256(b"s"),
                fresh_object: true,
                fresh_job: false,
            },
            Response::Status { status: None },
            Response::Status {
                status: Some(JobStatus::Running),
            },
            Response::Result {
                certificate: vec![0; 64],
            },
            Response::Stats {
                text: "everything is fine".into(),
            },
            Response::ShuttingDown,
            Response::Error {
                message: "unknown bug".into(),
            },
        ];
        for resp in responses {
            assert_eq!(Response::from_frame(&resp.to_frame().unwrap()).unwrap(), resp);
        }
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_are_rejected() {
        let frame = Frame {
            kind: 0x42,
            payload: vec![],
        };
        assert_eq!(
            Request::from_frame(&frame).unwrap_err(),
            ProtoError::UnknownKind(0x42)
        );
        let mut frame = Request::Stats.to_frame().unwrap();
        frame.payload.push(0);
        assert!(matches!(
            Request::from_frame(&frame).unwrap_err(),
            ProtoError::BadPayload(_)
        ));
    }
}
