//! Durable flush-on-failure writer for ring-mode sketches.
//!
//! When an always-on recorder trips a failure, the retained epoch window
//! plus its checkpoint is encoded (codec v3) and written to local disk
//! *before* anything is submitted anywhere — the flush file is the only
//! evidence of the failure, so a crash mid-flush must never leave a file
//! that decodes as a valid sketch with silently missing bytes.
//!
//! The write sequence mirrors `store::put` step for step: stage into a
//! sibling tmp file → write → fsync the staged bytes → `rename(2)` into
//! place → fsync the directory. The same [`Faults`] matrix that proves
//! the store's contract proves this one (`flush.write.*` points), and the
//! recovery invariant is binary: after a crash at any point the target
//! path either does not exist or holds the complete encoded sketch.

use crate::faultpoint::{FaultPoint, Faults};
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Opens `dir` and fsyncs it, making the renamed-in flush file's dirent
/// durable.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// The staging sibling for `target`: same directory (so the rename is
/// atomic on every filesystem), name suffixed to never collide with a
/// published flush.
fn stage_path(target: &Path) -> std::path::PathBuf {
    let mut name = target
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "flush".into());
    name.push(format!(".tmp-{}", std::process::id()));
    target.with_file_name(name)
}

/// Writes `data` to `target` with the full durability chain; the
/// production entry point the recorder's flush path calls.
pub fn write_flush(target: &Path, data: &[u8]) -> io::Result<()> {
    write_flush_with_faults(target, data, &Faults::none())
}

/// [`write_flush`] with an injectable crash-point handle (tests and the
/// torture harness).
pub fn write_flush_with_faults(target: &Path, data: &[u8], faults: &Faults) -> io::Result<()> {
    let parent = match target.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    std::fs::create_dir_all(&parent)?;
    let tmp = stage_path(target);
    faults.check(FaultPoint::FlushStageCrash)?;
    {
        let mut file = File::create(&tmp)?;
        if let Some(keep) = faults.torn(FaultPoint::FlushStageTorn, data.len()) {
            file.write_all(&data[..keep])?;
            let _ = file.sync_all();
            return Err(Faults::torn_error(FaultPoint::FlushStageTorn));
        }
        file.write_all(data)?;
        faults.check(FaultPoint::FlushTmpSyncCrash)?;
        // The staged bytes must be durable BEFORE the rename: a rename of
        // an unsynced file can publish a name whose content is lost by
        // power failure.
        file.sync_all()?;
    }
    faults.check(FaultPoint::FlushRenameCrash)?;
    std::fs::rename(&tmp, target)?;
    faults.check(FaultPoint::FlushDirSyncCrash)?;
    sync_dir(&parent)?;
    Ok(())
}

/// Sweeps staging files a crashed flush left next to `target` — called on
/// recorder startup, mirroring the store's tmp sweep. Best effort: a
/// sweep failure leaves garbage, not corruption.
pub fn sweep_stale(target: &Path) -> usize {
    let Some(parent) = target.parent().filter(|p| !p.as_os_str().is_empty()) else {
        return 0;
    };
    let Some(base) = target.file_name().map(|n| n.to_string_lossy().into_owned()) else {
        return 0;
    };
    let prefix = format!("{base}.tmp-");
    let Ok(entries) = std::fs::read_dir(parent) else {
        return 0;
    };
    let mut swept = 0;
    for entry in entries.flatten() {
        if entry.file_name().to_string_lossy().starts_with(&prefix)
            && std::fs::remove_file(entry.path()).is_ok()
        {
            swept += 1;
        }
    }
    if swept > 0 {
        let _ = sync_dir(parent);
    }
    swept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultpoint::FaultMode;

    fn tmp_root(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pres-flush-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn flush_lands_complete_and_replaces_prior_flush() {
        let root = tmp_root("ok");
        let target = root.join("ring-flush.sketch");
        write_flush(&target, b"first flush bytes").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"first flush bytes");
        // A later failure overwrites atomically — no torn mix of the two.
        write_flush(&target, b"second").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"second");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn every_crash_point_leaves_target_absent_or_complete() {
        for point in [
            FaultPoint::FlushStageCrash,
            FaultPoint::FlushTmpSyncCrash,
            FaultPoint::FlushRenameCrash,
            FaultPoint::FlushDirSyncCrash,
        ] {
            let root = tmp_root(point.name().rsplit('.').next().unwrap());
            let target = root.join("ring-flush.sketch");
            let faults = Faults::new();
            faults.arm(point, FaultMode::Crash, 1);
            let err = write_flush_with_faults(&target, b"payload", &faults).unwrap_err();
            assert!(err.to_string().contains(point.name()), "{err}");
            assert!(faults.fired());
            if target.exists() {
                // Crash after the rename: the flush is already complete.
                assert_eq!(std::fs::read(&target).unwrap(), b"payload");
            }
            // The restart path cleans any staged leftovers, and a retry
            // of the same flush then succeeds in full.
            sweep_stale(&target);
            write_flush_with_faults(&target, b"payload", &faults).unwrap();
            assert_eq!(std::fs::read(&target).unwrap(), b"payload");
            let _ = std::fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn torn_stage_never_publishes_the_target() {
        let root = tmp_root("torn");
        let target = root.join("ring-flush.sketch");
        let faults = Faults::new();
        faults.arm(FaultPoint::FlushStageTorn, FaultMode::Torn { keep: 3 }, 1);
        let err = write_flush_with_faults(&target, b"payload", &faults).unwrap_err();
        assert!(err.to_string().contains("flush.write.stage-torn"), "{err}");
        assert!(!target.exists(), "torn staging write must never publish");
        assert_eq!(sweep_stale(&target), 1, "the torn tmp file is swept");
        let _ = std::fs::remove_dir_all(&root);
    }
}
