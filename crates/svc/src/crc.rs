//! CRC-32 (IEEE 802.3 polynomial), in-repo like every other primitive.
//!
//! The journal trailer uses this to tell a *torn* append (a crash left a
//! plausible length prefix but a partial or garbage payload at the tail —
//! truncate and continue) from *corruption* (a record that mismatches its
//! checksum with more records behind it — hard error). SHA-256 would be
//! overkill per record; CRC-32 catches every burst error shorter than the
//! polynomial and is one table lookup per byte.

/// Reflected CRC-32 lookup table for polynomial `0xEDB88320`.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 of `data` (IEEE: init `!0`, reflected, final xor `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The check value every CRC-32/IEEE implementation must produce.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"the journal record payload";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {i} bit {bit}");
                copy[i] ^= 1 << bit;
            }
        }
    }
}
