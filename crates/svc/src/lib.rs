//! # pres-svc — replay as a service
//!
//! The PRES workflow is batch-shaped: a production machine records a cheap
//! sketch when a failure bites, and *somewhere* an explorer spends minutes
//! of CPU turning that sketch into a deterministic replay certificate.
//! This crate is the "somewhere": a daemon that accepts sketches over a
//! small binary protocol, queues the exploration work, and hands back
//! certificates — so one warm machine serves many recording hosts, and
//! repeated submissions of the same failure cost one exploration total.
//!
//! | Module | Role |
//! |---|---|
//! | [`digest`] | SHA-256, in-repo (the workspace is dependency-free) |
//! | [`crc`] | CRC-32 (IEEE), in-repo — per-record journal checksums |
//! | [`store`] | content-addressed object store (sketches + certificates) |
//! | [`journal`] | append-only, crash-tolerant job journal (group commit) |
//! | [`cache`] | digest-keyed, byte-budgeted sketch decode cache |
//! | [`queue`] | FIFO job queue: dedup, retries with backoff, timeouts |
//! | [`metrics`] | atomic counters + latency histogram |
//! | [`wire`] | byte-level field encoding shared by journal and protocol |
//! | [`proto`] | length-prefixed framed protocol (versioned, size-capped) |
//! | [`netpoll`] | std-only `poll(2)` shim for the connection workers |
//! | [`server`] | the daemon: accept loop, connection workers, lifecycle |
//! | [`cluster`] | rendezvous-hashed sharding, N-way replication, stealing |
//! | [`client`] | the client the CLI and the tests both use |
//! | [`faultpoint`] | deterministic crash injection for durability tests |
//! | [`flush`] | durable flush-on-failure writer for ring-mode sketches |
//!
//! Two properties anchor the design:
//!
//! * **Determinism survives the network.** A job runs the same serial
//!   exploration path as [`pres_core::Pres::reproduce`] with default
//!   settings, so a daemon-minted certificate is byte-identical to an
//!   in-process reproduction of the same sketch — storage and transport
//!   add zero nondeterminism.
//! * **Restart is replay.** The store's objects are named by their own
//!   content hash and the queue journals every transition before
//!   acknowledging it, so recovery after a crash is a directory walk plus
//!   a journal replay — there is no separate index to rebuild or trust.

pub mod cache;
pub mod client;
pub mod cluster;
pub mod crc;
pub mod digest;
pub mod faultpoint;
pub mod flush;
pub mod journal;
pub mod metrics;
pub mod netpoll;
pub mod proto;
pub mod queue;
pub mod server;
pub mod store;
pub mod wire;

pub use cache::{CachedSketch, SketchCache};
pub use cluster::{Cluster, ClusterConfig, ObjectRole, RepairReport};
pub use client::{Client, SubmitReceipt};
pub use digest::{sha256, Digest, Sha256};
pub use faultpoint::{FaultMode, FaultPoint, Faults};
pub use journal::GroupCommit;
pub use metrics::Metrics;
pub use proto::{AnyFrame, Frame, Frame2, ProtoError, Request, Response, Severity};
pub use queue::{JobQueue, JobStatus, QueueConfig};
pub use server::{FrontendKind, ServeOptions, Server};
pub use store::{FsckReport, Store, StreamingPut};
