//! `pres-torture` — the kill-the-real-process crash-consistency harness.
//!
//! The faultpoint matrix (`tests/svc_crash.rs`) proves recovery at every
//! *simulated* crash point; this binary removes the simulation. Each
//! iteration starts a real `pres serve` daemon on a persistent data
//! directory, drives submit load over loopback TCP, SIGKILLs the process
//! at a seeded random moment, and then verifies — offline against the
//! files, and online against the restarted daemon — that the durability
//! contract held:
//!
//! * every submit acknowledged before the kill is still known (journal
//!   replay) and every terminal status observed is preserved exactly;
//! * the object store self-verifies: fsck quarantines nothing, staging
//!   is swept, the index matches the objects on disk;
//! * resubmitting a known `(bug, sketch)` joins the existing job rather
//!   than forking a duplicate;
//! * after a final kill-free drain, every job is terminal, every
//!   certificate fetches, decodes, and matches its content digest, and
//!   the store holds exactly |sketches| + |distinct certificates|
//!   objects — re-executions after crashes minted byte-identical
//!   certificates, never duplicates.
//!
//! Usage (all flags optional):
//!
//! ```text
//! pres-torture [--pres PATH] [--iterations N] [--seed N]
//!              [--data-dir DIR] [--kill-max-ms N]
//! ```
//!
//! Exits 0 only if every invariant held across every iteration.

use pres_apps::registry::all_bugs;
use pres_core::api::Pres;
use pres_core::codec::encode_sketch;
use pres_core::sketch::Mechanism;
use pres_core::Certificate;
use pres_svc::queue::JobStatus;
use pres_svc::store::Store;
use pres_svc::journal::{Journal, Record};
use pres_svc::{sha256, Client, Digest};
use pres_tvm::rng::ChaCha8Rng;
use pres_tvm::sync::Mutex;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BUG: &str = "pbzip-order";

struct Options {
    pres: PathBuf,
    iterations: u32,
    seed: u64,
    data_dir: PathBuf,
    kill_max_ms: u64,
}

fn parse_options() -> Result<Options, String> {
    // Default to the `pres` binary built next to this one.
    let sibling_pres = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("pres")))
        .unwrap_or_else(|| PathBuf::from("pres"));
    let mut opts = Options {
        pres: sibling_pres,
        iterations: 25,
        seed: 1,
        data_dir: std::env::temp_dir().join(format!("pres-torture-{}", std::process::id())),
        kill_max_ms: 300,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--pres" => opts.pres = value("--pres")?.into(),
            "--iterations" => {
                opts.iterations = value("--iterations")?
                    .parse()
                    .map_err(|e| format!("bad --iterations: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--data-dir" => opts.data_dir = value("--data-dir")?.into(),
            "--kill-max-ms" => {
                opts.kill_max_ms = value("--kill-max-ms")?
                    .parse::<u64>()
                    .map_err(|e| format!("bad --kill-max-ms: {e}"))?
                    .max(1);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

/// What the harness has been *promised* and may therefore demand back
/// after any number of kills.
#[derive(Default)]
struct Ledger {
    /// job id → (bug, sketch digest) for every acknowledged submit.
    acked: BTreeMap<u64, (String, Digest)>,
    /// job id → the terminal status once observed. Terminal means
    /// *forever*: any later disagreement is a violation.
    terminal: BTreeMap<u64, JobStatus>,
}

struct Daemon {
    child: Child,
    addr: String,
    stdout_drain: std::thread::JoinHandle<()>,
}

fn start_daemon(opts: &Options) -> Result<Daemon, String> {
    let mut child = Command::new(&opts.pres)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            opts.data_dir.to_str().expect("utf-8 data dir"),
            "--job-workers",
            "2",
            "--log-interval-secs",
            "0",
            // Group commit explicitly on, with a hold wide enough that
            // SIGKILLs land inside open commit windows — the torture
            // audit must hold for batched cohorts, not just per-record
            // syncs.
            "--journal-batch",
            "64",
            "--journal-batch-usecs",
            "2000",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", opts.pres.display()))?;
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("reading daemon stdout: {e}"))?;
        if n == 0 {
            let _ = child.kill();
            return Err("daemon exited before announcing its address".into());
        }
        // cmd_serve prints: "pres-svc listening on HOST:PORT (data dir ..."
        if let Some(rest) = line.strip_prefix("pres-svc listening on ") {
            match rest.split_whitespace().next() {
                Some(addr) => break addr.to_string(),
                None => return Err(format!("unparsable listen line: {line:?}")),
            }
        }
    };
    // Keep draining stdout so the daemon never blocks on a full pipe.
    let stdout_drain = std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    Ok(Daemon {
        child,
        addr,
        stdout_drain,
    })
}

/// Distinct sketch blobs for one bug: different production seeds record
/// different failing schedules, so each is its own store object and job.
fn sketch_pool() -> Vec<Vec<u8>> {
    let case = all_bugs()
        .into_iter()
        .find(|b| b.id == BUG)
        .expect("torture bug exists");
    let pres = Pres::new(Mechanism::Sync);
    let mut pool = Vec::new();
    let mut from = 0;
    while pool.len() < 4 && from < 50_000 {
        let program = case.program();
        let Some(run) = pres.record_until_failure(program.as_ref(), from..from + 10_000) else {
            break;
        };
        from = run.sketch.meta.seed + 1;
        pool.push(encode_sketch(&run.sketch));
    }
    assert!(!pool.is_empty(), "no failing run recorded for {BUG}");
    pool
}

/// Loops submit + status-poll against `addr` until `stop`, recording
/// acknowledgements in the ledger. Transport errors are expected (the
/// daemon is being murdered) and simply end the loop.
fn submit_load(
    addr: String,
    sketches: Arc<Vec<Vec<u8>>>,
    ledger: Arc<Mutex<Ledger>>,
    stop: Arc<AtomicBool>,
    seed: u64,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let Ok(mut client) = Client::connect(&addr) else {
        return;
    };
    while !stop.load(Ordering::SeqCst) {
        let sketch = &sketches[rng.gen_range(0..sketches.len())];
        match client.submit(BUG, sketch) {
            Ok(receipt) => {
                let mut ledger = ledger.lock();
                ledger
                    .acked
                    .insert(receipt.job, (BUG.to_string(), receipt.sketch));
            }
            Err(_) => return,
        }
        // Poll a random known job; a terminal answer is a promise.
        let known: Vec<u64> = ledger.lock().acked.keys().copied().collect();
        if !known.is_empty() {
            let job = known[rng.gen_range(0..known.len())];
            match client.status(job) {
                Ok(Some(status)) if status.is_terminal() => {
                    ledger.lock().terminal.entry(job).or_insert(status);
                }
                Ok(_) => {}
                Err(_) => return,
            }
        }
        std::thread::sleep(Duration::from_millis(rng.gen_range(1usize..10) as u64));
    }
}

/// The offline half: with the daemon dead, open the files directly.
fn check_offline(data_dir: &Path, ledger: &Ledger, violations: &mut Vec<String>) {
    // Store: index == objects on disk, everything self-verifies, staging
    // is swept by the open itself.
    match Store::open(data_dir.join("store")) {
        Ok((store, _)) => {
            match store.fsck() {
                Ok(report) => {
                    if report.quarantined != 0 {
                        violations.push(format!(
                            "store fsck quarantined {} object(s) after SIGKILL",
                            report.quarantined
                        ));
                    }
                }
                Err(e) => violations.push(format!("store fsck failed: {e}")),
            }
            let tmp_left = std::fs::read_dir(data_dir.join("store/tmp"))
                .map(|d| d.count())
                .unwrap_or(0);
            if tmp_left != 0 {
                violations.push(format!("{tmp_left} staging file(s) survived the sweep"));
            }
        }
        Err(e) => violations.push(format!("store reopen failed: {e}")),
    }

    // Journal: replays cleanly and holds every acknowledged transition.
    match Journal::open(data_dir.join("journal.log")) {
        Ok((_, records)) => {
            let mut submits: BTreeMap<u64, (String, Digest)> = BTreeMap::new();
            let mut results: BTreeMap<u64, JobStatus> = BTreeMap::new();
            for record in &records {
                match record {
                    Record::Submit { job, bug, sketch } => {
                        if submits.insert(*job, (bug.clone(), *sketch)).is_some() {
                            violations.push(format!("job {job} journaled SUBMIT twice"));
                        }
                    }
                    Record::Result { job, status } => {
                        results.insert(*job, status.clone());
                    }
                    Record::Retry { .. } => {}
                }
            }
            for (job, promised) in &ledger.acked {
                match submits.get(job) {
                    Some(on_disk) if on_disk == promised => {}
                    Some(on_disk) => violations.push(format!(
                        "job {job}: journal says {on_disk:?}, client was promised {promised:?}"
                    )),
                    None => violations.push(format!(
                        "job {job}: acknowledged submit missing from the journal"
                    )),
                }
            }
            for (job, promised) in &ledger.terminal {
                match results.get(job) {
                    Some(on_disk) if on_disk == promised => {}
                    other => violations.push(format!(
                        "job {job}: terminal status {promised:?} not durably {other:?}"
                    )),
                }
            }
        }
        Err(e) => violations.push(format!("journal reopen failed: {e}")),
    }
}

/// The online half: the restarted daemon must still honor every promise.
fn check_online(addr: &str, ledger: &mut Ledger, sketches: &[Vec<u8>], violations: &mut Vec<String>) {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            violations.push(format!("cannot connect to restarted daemon: {e}"));
            return;
        }
    };
    for (job, (_, digest)) in &ledger.acked {
        match client.status(*job) {
            Ok(Some(status)) => {
                if let Some(promised) = ledger.terminal.get(job) {
                    if status != *promised {
                        violations.push(format!(
                            "job {job}: terminal {promised:?} became {status:?} after restart"
                        ));
                    }
                }
            }
            Ok(None) => violations.push(format!("job {job} (sketch {digest}) forgotten after restart")),
            Err(e) => violations.push(format!("status({job}) failed after restart: {e}")),
        }
    }
    // Dedup must survive restart: resubmitting a sketch the daemon has
    // already acknowledged joins the existing object and job, never
    // forking a duplicate. Sketches never acknowledged yet are simply
    // ingested now (and become promises themselves).
    let known: Vec<Digest> = ledger.acked.values().map(|(_, d)| *d).collect();
    for sketch in sketches {
        match client.submit(BUG, sketch) {
            Ok(receipt) => {
                if known.contains(&receipt.sketch) {
                    if receipt.fresh_object {
                        violations.push(format!(
                            "sketch {} re-ingested as a fresh object after restart",
                            receipt.sketch
                        ));
                    }
                    if receipt.fresh_job {
                        violations.push(format!(
                            "sketch {} forked duplicate job {} after restart",
                            receipt.sketch, receipt.job
                        ));
                    }
                }
                ledger
                    .acked
                    .insert(receipt.job, (BUG.to_string(), receipt.sketch));
            }
            Err(e) => violations.push(format!("resubmit after restart failed: {e}")),
        }
    }
}

fn kill(mut daemon: Daemon) {
    let _ = daemon.child.kill(); // SIGKILL on unix
    let _ = daemon.child.wait();
    let _ = daemon.stdout_drain.join();
}

fn main() -> ExitCode {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pres-torture: {e}");
            return ExitCode::FAILURE;
        }
    };
    let _ = std::fs::remove_dir_all(&opts.data_dir);
    std::fs::create_dir_all(&opts.data_dir).expect("create data dir");
    eprintln!(
        "pres-torture: {} iterations, seed {}, data dir {}, pres = {}",
        opts.iterations,
        opts.seed,
        opts.data_dir.display(),
        opts.pres.display()
    );

    let started = Instant::now();
    let sketches = Arc::new(sketch_pool());
    let sketch_digests: Vec<Digest> = sketches.iter().map(|s| sha256(s)).collect();
    eprintln!("pres-torture: {} distinct sketches recorded", sketches.len());
    let ledger = Arc::new(Mutex::new(Ledger::default()));
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut violations: Vec<String> = Vec::new();

    for iteration in 1..=opts.iterations {
        let daemon = match start_daemon(&opts) {
            Ok(d) => d,
            Err(e) => {
                violations.push(format!("iteration {iteration}: {e}"));
                break;
            }
        };

        // Restart promises first: the daemon we just started must still
        // honor everything acknowledged before the previous kill.
        {
            let mut ledger = ledger.lock();
            let before = violations.len();
            check_online(&daemon.addr, &mut ledger, &sketches, &mut violations);
            for v in &violations[before..] {
                eprintln!("pres-torture: VIOLATION (iteration {iteration}, online): {v}");
            }
        }

        // Load until the seeded kill moment.
        let stop = Arc::new(AtomicBool::new(false));
        let loader = {
            let addr = daemon.addr.clone();
            let sketches = Arc::clone(&sketches);
            let ledger = Arc::clone(&ledger);
            let stop = Arc::clone(&stop);
            let seed = opts.seed ^ (u64::from(iteration) << 32);
            std::thread::spawn(move || submit_load(addr, sketches, ledger, stop, seed))
        };
        let kill_after = Duration::from_millis(rng.gen_range(1..opts.kill_max_ms as usize) as u64);
        std::thread::sleep(kill_after);
        kill(daemon);
        stop.store(true, Ordering::SeqCst);
        let _ = loader.join();

        let before = violations.len();
        {
            let ledger = ledger.lock();
            check_offline(&opts.data_dir, &ledger, &mut violations);
        }
        for v in &violations[before..] {
            eprintln!("pres-torture: VIOLATION (iteration {iteration}, offline): {v}");
        }
        let l = ledger.lock();
        eprintln!(
            "pres-torture: iteration {iteration}/{}: killed after {kill_after:?}; {} acked job(s), {} terminal, {} violation(s)",
            opts.iterations,
            l.acked.len(),
            l.terminal.len(),
            violations.len()
        );
    }

    // Final kill-free pass: drain everything and audit the end state.
    eprintln!("pres-torture: final drain (no kill)");
    match start_daemon(&opts) {
        Ok(daemon) => {
            let before = violations.len();
            {
                let mut ledger = ledger.lock();
                check_online(&daemon.addr, &mut ledger, &sketches, &mut violations);
            }
            match Client::connect(&daemon.addr) {
                Ok(mut client) => {
                    let jobs: Vec<u64> = ledger.lock().acked.keys().copied().collect();
                    let mut certs: Vec<Digest> = Vec::new();
                    for job in jobs {
                        match client.wait(job, Duration::from_secs(300)) {
                            Ok(JobStatus::Succeeded { certificate, .. }) => {
                                match client.fetch_certificate(job) {
                                    Ok(bytes) => {
                                        if sha256(&bytes) != certificate {
                                            violations.push(format!(
                                                "job {job}: certificate bytes do not match digest {certificate}"
                                            ));
                                        } else if Certificate::decode(&bytes).is_err() {
                                            violations.push(format!(
                                                "job {job}: certificate {certificate} does not decode"
                                            ));
                                        }
                                        if !certs.contains(&certificate) {
                                            certs.push(certificate);
                                        }
                                    }
                                    Err(e) => violations
                                        .push(format!("job {job}: certificate fetch failed: {e}")),
                                }
                            }
                            Ok(terminal) => eprintln!(
                                "pres-torture: note: job {job} drained as {terminal} (not Succeeded)"
                            ),
                            Err(e) => {
                                violations.push(format!("job {job} never drained: {e}"));
                            }
                        }
                    }
                    let _ = client.shutdown();
                    let _ = daemon.stdout_drain.join();
                    let mut child = daemon.child;
                    let _ = child.wait();

                    // Duplicate-certificate audit: the store must hold the
                    // sketches plus one object per *distinct* certificate —
                    // crash-era re-executions converged, byte for byte.
                    match Store::open(opts.data_dir.join("store")) {
                        Ok((store, count)) => {
                            let expected = sketch_digests.len() + certs.len();
                            if count != expected {
                                violations.push(format!(
                                    "store holds {count} objects; expected {} sketches + {} certificates",
                                    sketch_digests.len(),
                                    certs.len()
                                ));
                            }
                            match store.fsck() {
                                Ok(report) if report.quarantined == 0 => {}
                                Ok(report) => violations.push(format!(
                                    "final fsck quarantined {} object(s)",
                                    report.quarantined
                                )),
                                Err(e) => violations.push(format!("final fsck failed: {e}")),
                            }
                        }
                        Err(e) => violations.push(format!("final store open failed: {e}")),
                    }
                }
                Err(e) => violations.push(format!("final connect failed: {e}")),
            }
            for v in &violations[before..] {
                eprintln!("pres-torture: VIOLATION (final drain): {v}");
            }
        }
        Err(e) => violations.push(format!("final daemon start failed: {e}")),
    }

    let l = ledger.lock();
    eprintln!(
        "pres-torture: done in {:.1?}: {} iterations, {} acked job(s), {} violation(s)",
        started.elapsed(),
        opts.iterations,
        l.acked.len(),
        violations.len()
    );
    if violations.is_empty() {
        let _ = std::fs::remove_dir_all(&opts.data_dir);
        eprintln!("pres-torture: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "pres-torture: FAIL — state preserved in {}",
            opts.data_dir.display()
        );
        ExitCode::FAILURE
    }
}
