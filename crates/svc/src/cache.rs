//! The digest-keyed sketch decode cache.
//!
//! Every job execution needs a decoded [`Sketch`] plus the
//! [`SketchIndex`] the replay schedulers consume. Without a cache the
//! worker pays `Store::get` (a disk read **and** a full SHA-256
//! re-verification), a container decode, and an index build for every
//! try — even when the try is a retry of the same job, a second bug over
//! the same sketch, or a duplicate submission. Content addressing makes
//! caching these trivial to get right: a digest's bytes never change, so
//! a cached decode can never go stale and there is no invalidation
//! protocol at all — the only policy is eviction.
//!
//! The cache is a byte-budgeted LRU. Entries are charged at their
//! *encoded container length* — a deterministic, already-known proxy for
//! the decoded footprint (the decoded entry table is proportional to the
//! container's entry section). A budget of `0` disables the cache
//! outright, which is the E19 cache-cold baseline and the byte-identity
//! pin's control arm: hits and misses must produce bit-identical
//! certificates, and `--sketch-cache-bytes 0` is how the tests prove it.
//!
//! Eviction scans for the least-recently-used entry (O(entries) per
//! eviction). The map holds at most `budget / min_sketch_size` entries —
//! tens, not thousands — so a scan beats the constant factor and code
//! weight of an intrusive LRU list at every realistic size.

use crate::digest::Digest;
use pres_core::sketch::{Sketch, SketchIndex};
use pres_tvm::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A decoded sketch and its derived replay index, shared immutably
/// between the cache and every worker using it.
#[derive(Debug)]
pub struct CachedSketch {
    /// The decoded sketch (workers read `meta` for validation).
    pub sketch: Sketch,
    /// The index every replay attempt borrows (built once per digest,
    /// not once per job execution).
    pub index: Arc<SketchIndex>,
}

struct Entry {
    value: Arc<CachedSketch>,
    charge: u64,
    /// Logical access clock at last touch; smallest = evict first.
    stamp: u64,
}

struct Inner {
    map: BTreeMap<Digest, Entry>,
    clock: u64,
    bytes: u64,
}

/// A byte-budgeted LRU of `sketch digest → Arc<(Sketch, SketchIndex)>`.
///
/// All methods are `&self`; the cache carries its own lock. Counters
/// (hits/misses/evictions) are the caller's job — [`crate::queue`] bumps
/// [`crate::metrics::Metrics`] at the call sites — so this type stays a
/// pure policy container.
pub struct SketchCache {
    budget: u64,
    inner: Mutex<Inner>,
}

impl SketchCache {
    /// A cache holding at most `budget` charged bytes. `0` disables
    /// caching entirely: every `get` misses, every `insert` is a no-op.
    pub fn new(budget: u64) -> SketchCache {
        SketchCache {
            budget,
            inner: Mutex::new(Inner {
                map: BTreeMap::new(),
                clock: 0,
                bytes: 0,
            }),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Looks `digest` up, bumping its recency on a hit.
    pub fn get(&self, digest: &Digest) -> Option<Arc<CachedSketch>> {
        if self.budget == 0 {
            return None;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner.map.get_mut(digest)?;
        entry.stamp = clock;
        Some(Arc::clone(&entry.value))
    }

    /// Inserts `value` under `digest`, charged at `charge` bytes,
    /// evicting least-recently-used entries until the budget holds.
    /// Returns how many entries were evicted. A value larger than the
    /// whole budget is not cached (and evicts nothing); re-inserting a
    /// present digest only refreshes its recency (the bytes under a
    /// digest are immutable, so the values are interchangeable).
    pub fn insert(&self, digest: Digest, value: Arc<CachedSketch>, charge: u64) -> u64 {
        if self.budget == 0 || charge > self.budget {
            return 0;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(entry) = inner.map.get_mut(&digest) {
            entry.stamp = clock;
            return 0;
        }
        let mut evicted = 0;
        while inner.bytes + charge > self.budget {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(d, _)| *d)
                .expect("over budget implies a resident entry");
            let gone = inner.map.remove(&lru).expect("lru key resident");
            inner.bytes -= gone.charge;
            evicted += 1;
        }
        inner.bytes += charge;
        inner.map.insert(
            digest,
            Entry {
                value,
                charge,
                stamp: clock,
            },
        );
        evicted
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Charged bytes currently resident.
    pub fn bytes(&self) -> u64 {
        self.inner.lock().bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::sha256;
    use pres_core::sketch::Mechanism;

    fn cached() -> Arc<CachedSketch> {
        let sketch = Sketch {
            mechanism: Mechanism::Sync,
            entries: Vec::new(),
            meta: Default::default(),
            checkpoint: None,
        };
        let index = Arc::new(SketchIndex::new(&sketch));
        Arc::new(CachedSketch { sketch, index })
    }

    #[test]
    fn zero_budget_disables_the_cache() {
        let c = SketchCache::new(0);
        let d = sha256(b"a");
        assert_eq!(c.insert(d, cached(), 10), 0);
        assert!(c.get(&d).is_none());
        assert_eq!((c.len(), c.bytes()), (0, 0));
    }

    #[test]
    fn lru_eviction_respects_recency_and_budget() {
        let c = SketchCache::new(100);
        let (a, b, d) = (sha256(b"a"), sha256(b"b"), sha256(b"c"));
        assert_eq!(c.insert(a, cached(), 40), 0);
        assert_eq!(c.insert(b, cached(), 40), 0);
        // Touch `a`: `b` becomes the LRU.
        assert!(c.get(&a).is_some());
        assert_eq!(c.insert(d, cached(), 40), 1);
        assert!(c.get(&a).is_some());
        assert!(c.get(&b).is_none(), "LRU entry should have been evicted");
        assert!(c.get(&d).is_some());
        assert_eq!(c.bytes(), 80);
    }

    #[test]
    fn oversized_values_are_not_cached() {
        let c = SketchCache::new(100);
        let (a, b) = (sha256(b"a"), sha256(b"big"));
        c.insert(a, cached(), 60);
        assert_eq!(c.insert(b, cached(), 101), 0, "must not evict for an uncacheable value");
        assert!(c.get(&a).is_some());
        assert!(c.get(&b).is_none());
    }

    #[test]
    fn reinserting_a_digest_refreshes_without_double_charging() {
        let c = SketchCache::new(100);
        let (a, b, d) = (sha256(b"a"), sha256(b"b"), sha256(b"c"));
        c.insert(a, cached(), 40);
        c.insert(b, cached(), 40);
        // Re-insert `a` (same digest ⇒ interchangeable value): recency
        // refreshed, bytes unchanged.
        assert_eq!(c.insert(a, cached(), 40), 0);
        assert_eq!(c.bytes(), 80);
        assert_eq!(c.insert(d, cached(), 40), 1);
        assert!(c.get(&a).is_some());
        assert!(c.get(&b).is_none());
    }

    #[test]
    fn a_single_entry_can_fill_the_whole_budget() {
        let c = SketchCache::new(50);
        let (a, b) = (sha256(b"a"), sha256(b"b"));
        c.insert(a, cached(), 50);
        assert!(c.get(&a).is_some());
        // The next full-budget entry evicts the first.
        assert_eq!(c.insert(b, cached(), 50), 1);
        assert!(c.get(&a).is_none());
        assert!(c.get(&b).is_some());
    }
}
