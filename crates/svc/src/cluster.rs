//! The node-to-node layer: a static, gossip-free cluster of `pres serve`
//! daemons acting as one sharded, replicated store and one job pool.
//!
//! ## Membership and the ring
//!
//! Every node is started with the same peer set (`--peer addr`, repeated)
//! and identifies itself by its advertised address string. There is no
//! gossip, no failure detector, and no membership change at runtime: the
//! ring is a pure function of the command line, so every node computes
//! identical placement with zero coordination.
//!
//! Placement uses rendezvous (highest-random-weight) hashing rather than
//! a hashed token circle: for an object `d`, every node is scored
//! `sha256(node_id ‖ 0x00 ‖ d)` and the `replicas` highest scores own
//! the object. Rendezvous hashing needs no virtual nodes to balance, and
//! removing one node reassigns only that node's share — the minimal-
//! disruption property consistent hashing is used for, in ~10 lines.
//!
//! ## Replication invariant
//!
//! Every published object should live on its `replicas` (default 2)
//! owners. Writes enforce this eagerly: a fresh local publish is pushed
//! to each remote owner before the put returns (best-effort — an
//! unreachable owner is skipped, not an error, because the local fsynced
//! copy already backs the durability ack). The startup/`pres fsck`
//! repair pass restores the invariant after a node was down: a *pull*
//! phase fetches objects this node owns but lacks (by listing each
//! peer), and a *push* phase re-sends local objects to owners that lack
//! them. Reads route local → owners → every remaining node, so any node
//! can serve any surviving object; a remote hit is re-published locally
//! when this node is an owner, which makes reads self-repairing too.
//!
//! ## Work stealing
//!
//! An idle node polls each peer with `PEER_STEAL`; the origin pops
//! queued jobs, parks them under a lease, and hands over `(job, bug,
//! sketch digest, retries)`. The thief fetches the sketch through the
//! routed store, executes with the origin's retry counter (which
//! perturbs the exploration seed — so the thief runs bit-for-bit the
//! attempt the origin would have), and reports the terminal status via
//! `PEER_DONE`. The origin journals the result and runs its normal
//! retry ladder; if the thief dies instead, the lease expires and the
//! job re-queues at the origin. Certificates are therefore byte-identical
//! regardless of which node executed.
//!
//! Peer links authenticate with the shared `--auth-token` secret when
//! one is configured (mandatory: a cluster mixing token and no-token
//! nodes will refuse each other's links rather than silently split).

use crate::client::Client;
use crate::digest::{sha256, Digest};
use crate::metrics::Metrics;
use crate::proto::PeerJob;
use crate::queue::JobStatus;
use crate::store::Store;
use pres_tvm::sync::Mutex;
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// How a digest relates to this node under the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectRole {
    /// This node has the highest rendezvous score: it is the object's
    /// first owner.
    Primary,
    /// This node is one of the non-primary owners.
    Replica,
    /// This node does not own the object; a local copy is a courtesy
    /// cache (e.g. fetched through a routed read), never relied upon.
    Foreign,
}

/// Static cluster configuration, straight off the command line.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's advertised address — its identity on the ring. Must
    /// be the address peers dial, byte-for-byte.
    pub self_id: String,
    /// The other nodes' advertised addresses.
    pub peers: Vec<String>,
    /// Owners per object (clamped to the node count; 2 = survive one
    /// node loss).
    pub replicas: usize,
    /// Shared secret for peer links (and enforced on clients when set).
    pub auth_token: Option<String>,
    /// Connect attempts per peer RPC before giving up on the peer.
    pub connect_attempts: u32,
    /// Base backoff between connect attempts (doubles per attempt).
    pub connect_backoff: Duration,
}

impl ClusterConfig {
    /// A config for `self_id` with `peers`, N=2, no auth, snappy
    /// reconnects — the common test/bench shape.
    pub fn new(self_id: impl Into<String>, peers: Vec<String>) -> ClusterConfig {
        ClusterConfig {
            self_id: self_id.into(),
            peers,
            replicas: 2,
            auth_token: None,
            connect_attempts: 3,
            connect_backoff: Duration::from_millis(50),
        }
    }
}

/// What a repair pass did, and what it could not do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairReport {
    /// Objects this node owns, lacked, and fetched from a peer.
    pub pulled: usize,
    /// Objects pushed to a remote owner that lacked them.
    pub pushed: usize,
    /// Owner slots that remain unfilled because the owner was
    /// unreachable — the cluster is under-replicated until it returns.
    pub under_replicated: usize,
    /// Peers that answered no RPC at all during the pass.
    pub peers_unreachable: usize,
}

impl RepairReport {
    /// Whether the replication invariant fully holds as far as this
    /// node can see.
    pub fn healthy(&self) -> bool {
        self.under_replicated == 0 && self.peers_unreachable == 0
    }
}

struct Peer {
    id: String,
    /// A cached, authenticated connection; dropped on any I/O error and
    /// re-dialed (with bounded backoff) on the next RPC.
    link: Mutex<Option<Client>>,
}

/// One node's view of the cluster. Shared by the store (object
/// routing), the server (peer frames, stealer thread, STATS), and
/// `pres fsck` (offline repair).
pub struct Cluster {
    self_id: String,
    peers: Vec<Peer>,
    replicas: usize,
    auth_token: Option<Vec<u8>>,
    connect_attempts: u32,
    connect_backoff: Duration,
    metrics: Arc<Metrics>,
}

/// Constant-time 32-byte comparison: the XOR-accumulate loop touches
/// every byte regardless of where the first mismatch is, so a token
/// check leaks no prefix-length timing.
pub fn constant_time_eq(a: &[u8; 32], b: &[u8; 32]) -> bool {
    a.iter().zip(b.iter()).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

/// Whether a presented token matches the configured secret. Both sides
/// are hashed first so the comparison is fixed-width and constant-time
/// even though tokens are variable-length.
pub fn token_matches(secret: &[u8], presented: &[u8]) -> bool {
    constant_time_eq(&sha256(secret).0, &sha256(presented).0)
}

impl Cluster {
    /// Builds a cluster view. `metrics` is the node's shared counter
    /// block (peer RPC traffic lands there); pass a fresh one for
    /// offline use (`pres fsck`).
    pub fn new(config: ClusterConfig, metrics: Arc<Metrics>) -> Cluster {
        let node_count = 1 + config.peers.len();
        Cluster {
            self_id: config.self_id,
            peers: config
                .peers
                .into_iter()
                .map(|id| Peer {
                    id,
                    link: Mutex::new(None),
                })
                .collect(),
            replicas: config.replicas.clamp(1, node_count),
            auth_token: config.auth_token.map(String::into_bytes),
            connect_attempts: config.connect_attempts,
            connect_backoff: config.connect_backoff,
            metrics,
        }
    }

    /// This node's ring identity.
    pub fn self_id(&self) -> &str {
        &self.self_id
    }

    /// The other nodes' identities (= the addresses they are dialed at).
    pub fn peer_ids(&self) -> Vec<String> {
        self.peers.iter().map(|p| p.id.clone()).collect()
    }

    /// Owners per object.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The rendezvous score of `node` for `digest`.
    fn score(node: &str, digest: &Digest) -> [u8; 32] {
        let mut keyed = Vec::with_capacity(node.len() + 1 + 32);
        keyed.extend_from_slice(node.as_bytes());
        keyed.push(0);
        keyed.extend_from_slice(&digest.0);
        sha256(&keyed).0
    }

    /// The object's owners: the `replicas` nodes with the highest
    /// rendezvous scores, best first. Identical on every node because it
    /// depends only on the (static) membership and the digest.
    pub fn owners(&self, digest: &Digest) -> Vec<&str> {
        let mut scored: Vec<(&str, [u8; 32])> = std::iter::once(self.self_id.as_str())
            .chain(self.peers.iter().map(|p| p.id.as_str()))
            .map(|id| (id, Cluster::score(id, digest)))
            .collect();
        // Descending by score; the score is a hash of the id so ties are
        // cryptographically negligible, but break them by id for total
        // determinism anyway.
        scored.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        scored.truncate(self.replicas);
        scored.into_iter().map(|(id, _)| id).collect()
    }

    /// This node's relationship to `digest` under the ring.
    pub fn role(&self, digest: &Digest) -> ObjectRole {
        let owners = self.owners(digest);
        match owners.iter().position(|id| *id == self.self_id) {
            Some(0) => ObjectRole::Primary,
            Some(_) => ObjectRole::Replica,
            None => ObjectRole::Foreign,
        }
    }

    /// Whether this node is among the object's owners.
    pub fn is_owner(&self, digest: &Digest) -> bool {
        self.role(digest) != ObjectRole::Foreign
    }

    /// Runs one RPC against a peer over its cached link, dialing (with
    /// bounded-backoff retry) and authenticating first if needed. Any
    /// error drops the cached link so the next RPC starts clean.
    fn with_peer<T>(
        &self,
        peer: &Peer,
        op: impl FnOnce(&mut Client) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut slot = peer.link.lock();
        if slot.is_none() {
            let mut client =
                Client::connect_with_retry(&peer.id, self.connect_attempts, self.connect_backoff)?;
            if let Some(token) = &self.auth_token {
                client.hello(token)?;
            }
            *slot = Some(client);
        }
        let client = slot.as_mut().expect("link dialed above");
        self.metrics.peer_rpcs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let result = op(client);
        if result.is_err() {
            *slot = None;
        }
        result
    }

    fn peer(&self, id: &str) -> Option<&Peer> {
        self.peers.iter().find(|p| p.id == id)
    }

    /// Pushes a locally published object to every remote owner that
    /// lacks it. Best-effort: an unreachable owner is skipped (the
    /// repair pass will finish the job), a reachable one that already
    /// holds the bytes costs one STAT. Returns how many copies were
    /// actually transferred.
    pub fn replicate(&self, digest: &Digest, store: &Store) -> usize {
        let owners: Vec<String> = self
            .owners(digest)
            .into_iter()
            .filter(|id| *id != self.self_id)
            .map(str::to_string)
            .collect();
        let mut pushed = 0;
        for owner in owners {
            if self.push_to(&owner, digest, store).unwrap_or(false) {
                pushed += 1;
            }
        }
        pushed
    }

    /// Streams one local object to one peer unless it already holds it.
    /// `Ok(true)` = bytes moved, `Ok(false)` = peer already had it.
    fn push_to(&self, peer_id: &str, digest: &Digest, store: &Store) -> io::Result<bool> {
        let peer = self
            .peer(peer_id)
            .ok_or_else(|| io::Error::other(format!("unknown peer {peer_id}")))?;
        let present = self.with_peer(peer, |c| c.peer_stat(digest))?;
        if present {
            return Ok(false);
        }
        // Stream straight off the object file: the sending node holds
        // one chunk in memory, the receiver spills to its staging file.
        let path = store.local_object_path(digest);
        self.with_peer(peer, |c| {
            let mut file = std::fs::File::open(&path)?;
            let fresh = c.peer_put(digest, &mut file)?;
            Ok(fresh)
        })?;
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        self.metrics
            .peer_bytes_out
            .fetch_add(bytes, std::sync::atomic::Ordering::Relaxed);
        Ok(true)
    }

    /// Fetches `digest` from the cluster: owners first (most likely to
    /// hold it), then every remaining peer (courtesy copies and
    /// replication gaps make this worth one STAT-free try each). The
    /// returned bytes are verified against the digest — a lying or
    /// corrupt peer yields `None` for that peer, not bad data.
    pub fn fetch(&self, digest: &Digest) -> Option<Vec<u8>> {
        let owners = self.owners(digest);
        let ordered: Vec<&Peer> = owners
            .iter()
            .filter_map(|id| self.peer(id))
            .chain(
                self.peers
                    .iter()
                    .filter(|p| !owners.contains(&p.id.as_str())),
            )
            .collect();
        for peer in ordered {
            if let Ok(Some(bytes)) = self.with_peer(peer, |c| c.peer_get(digest)) {
                if sha256(&bytes) == *digest {
                    self.metrics
                        .peer_bytes_in
                        .fetch_add(bytes.len() as u64, std::sync::atomic::Ordering::Relaxed);
                    return Some(bytes);
                }
                // Verification failure: the peer's copy is corrupt; its
                // own fsck will quarantine it. Keep looking.
            }
        }
        None
    }

    /// Asks one peer for up to `max` queued jobs.
    pub fn steal_from(&self, peer_id: &str, max: u32) -> io::Result<Vec<PeerJob>> {
        let peer = self
            .peer(peer_id)
            .ok_or_else(|| io::Error::other(format!("unknown peer {peer_id}")))?;
        self.with_peer(peer, |c| c.peer_steal(max))
    }

    /// Reports a stolen job's terminal status back to its origin.
    pub fn report_done(&self, peer_id: &str, job: u64, status: JobStatus) -> io::Result<bool> {
        let peer = self
            .peer(peer_id)
            .ok_or_else(|| io::Error::other(format!("unknown peer {peer_id}")))?;
        self.with_peer(peer, |c| c.peer_done(job, status))
    }

    /// The repair pass: restores the replication invariant as far as
    /// reachable peers allow. Run in the background at daemon startup
    /// and in the foreground by `pres fsck --peer`.
    ///
    /// *Pull*: list each peer, fetch anything this node owns but lacks.
    /// *Push*: for every local object, send it to each remote owner
    /// missing it. Unreachable owners are counted, not retried — the
    /// report's `healthy()` is the "safe to lose a node again" signal.
    pub fn repair(&self, store: &Store) -> io::Result<RepairReport> {
        let mut report = RepairReport::default();

        // Pull phase. A peer that fails the LIST is marked unreachable
        // and skipped for the rest of the pass (its owner slots surface
        // as under-replication in the push phase).
        let mut reachable: Vec<bool> = Vec::with_capacity(self.peers.len());
        for peer in &self.peers {
            match self.with_peer(peer, |c| c.peer_list()) {
                Ok(digests) => {
                    reachable.push(true);
                    for digest in digests {
                        if !self.is_owner(&digest) || store.contains(&digest) {
                            continue;
                        }
                        match self.with_peer(peer, |c| c.peer_get(&digest)) {
                            Ok(Some(bytes)) if sha256(&bytes) == digest => {
                                self.metrics.peer_bytes_in.fetch_add(
                                    bytes.len() as u64,
                                    std::sync::atomic::Ordering::Relaxed,
                                );
                                store.put_local(&bytes)?;
                                report.pulled += 1;
                                self.metrics
                                    .repair_pulled
                                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            _ => {}
                        }
                    }
                }
                Err(_) => {
                    reachable.push(false);
                    report.peers_unreachable += 1;
                }
            }
        }

        // Push phase: walk the local objects and fill remote owner slots.
        let unreachable = |id: &str| {
            self.peers
                .iter()
                .position(|p| p.id == id)
                .is_some_and(|i| !reachable[i])
        };
        for digest in store.local_digests()? {
            for owner in self.owners(&digest) {
                if owner == self.self_id {
                    continue;
                }
                let owner = owner.to_string();
                if unreachable(&owner) {
                    report.under_replicated += 1;
                    continue;
                }
                match self.push_to(&owner, &digest, store) {
                    Ok(true) => {
                        report.pushed += 1;
                        self.metrics
                            .repair_pushed
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    Ok(false) => {}
                    Err(_) => report.under_replicated += 1,
                }
            }
        }
        Ok(report)
    }

    /// Counts this node's objects by ring role — the replication-health
    /// section of STATS and `pres fsck`.
    pub fn census(&self, store: &Store) -> io::Result<(usize, usize, usize)> {
        let (mut primary, mut replica, mut foreign) = (0, 0, 0);
        for digest in store.local_digests()? {
            match self.role(&digest) {
                ObjectRole::Primary => primary += 1,
                ObjectRole::Replica => replica += 1,
                ObjectRole::Foreign => foreign += 1,
            }
        }
        Ok((primary, replica, foreign))
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("self_id", &self.self_id)
            .field("peers", &self.peer_ids())
            .field("replicas", &self.replicas)
            .field("auth", &self.auth_token.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(self_id: &str, peers: &[&str], replicas: usize) -> Cluster {
        let mut config = ClusterConfig::new(self_id, peers.iter().map(|s| s.to_string()).collect());
        config.replicas = replicas;
        Cluster::new(config, Arc::new(Metrics::new()))
    }

    #[test]
    fn every_node_computes_identical_owners() {
        let ids = ["10.0.0.1:7", "10.0.0.2:7", "10.0.0.3:7", "10.0.0.4:7"];
        let views: Vec<Cluster> = ids
            .iter()
            .map(|id| {
                let peers: Vec<&str> = ids.iter().filter(|p| *p != id).copied().collect();
                cluster(id, &peers, 2)
            })
            .collect();
        for i in 0..64u32 {
            let digest = sha256(&i.to_be_bytes());
            let want: Vec<String> = views[0]
                .owners(&digest)
                .into_iter()
                .map(str::to_string)
                .collect();
            assert_eq!(want.len(), 2);
            for view in &views[1..] {
                let got: Vec<String> = view
                    .owners(&digest)
                    .into_iter()
                    .map(str::to_string)
                    .collect();
                assert_eq!(got, want, "digest {i}: views disagree");
            }
        }
    }

    #[test]
    fn rendezvous_spread_is_roughly_balanced() {
        let ids = ["a:1", "b:1", "c:1"];
        let view = cluster(ids[0], &ids[1..], 1);
        let mut counts = std::collections::BTreeMap::new();
        let n = 600u32;
        for i in 0..n {
            let digest = sha256(&i.to_be_bytes());
            let owner = view.owners(&digest)[0].to_string();
            *counts.entry(owner).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 3, "every node should own something");
        for (node, count) in counts {
            // Perfectly even would be 200 each; allow a wide band — the
            // claim is "no node is starved or doubled", not uniformity.
            assert!(
                (100..=300).contains(&count),
                "node {node} owns {count} of {n}"
            );
        }
    }

    #[test]
    fn removing_a_node_only_moves_its_own_share() {
        let ids = ["a:1", "b:1", "c:1"];
        let full = cluster(ids[0], &ids[1..], 1);
        let reduced = cluster(ids[0], &ids[1..2], 1); // c:1 removed
        for i in 0..200u32 {
            let digest = sha256(&i.to_be_bytes());
            let before = full.owners(&digest)[0].to_string();
            let after = reduced.owners(&digest)[0].to_string();
            if before != "c:1" {
                assert_eq!(before, after, "digest {i} moved although its owner survived");
            }
        }
    }

    #[test]
    fn roles_partition_the_ring() {
        let ids = ["a:1", "b:1", "c:1"];
        let views: Vec<Cluster> = ids
            .iter()
            .map(|id| {
                let peers: Vec<&str> = ids.iter().filter(|p| *p != id).copied().collect();
                cluster(id, &peers, 2)
            })
            .collect();
        for i in 0..100u32 {
            let digest = sha256(&i.to_be_bytes());
            let primaries = views
                .iter()
                .filter(|v| v.role(&digest) == ObjectRole::Primary)
                .count();
            let replicas = views
                .iter()
                .filter(|v| v.role(&digest) == ObjectRole::Replica)
                .count();
            assert_eq!(primaries, 1, "digest {i}");
            assert_eq!(replicas, 1, "digest {i}");
        }
    }

    #[test]
    fn replicas_clamp_to_node_count() {
        let view = cluster("a:1", &["b:1"], 9);
        assert_eq!(view.replicas(), 2);
        let digest = sha256(b"x");
        assert_eq!(view.owners(&digest).len(), 2);
        let solo = cluster("a:1", &[], 2);
        assert_eq!(solo.replicas(), 1);
    }

    #[test]
    fn token_comparison_accepts_equal_rejects_unequal() {
        assert!(token_matches(b"sesame", b"sesame"));
        assert!(!token_matches(b"sesame", b"sesame "));
        assert!(!token_matches(b"sesame", b""));
        assert!(token_matches(b"", b""));
        assert!(constant_time_eq(&[7; 32], &[7; 32]));
        let mut other = [7u8; 32];
        other[31] ^= 1;
        assert!(!constant_time_eq(&[7; 32], &other));
    }
}
