//! The top-level PRES API: record production runs, reproduce failures.
//!
//! This is the façade a downstream user drives:
//!
//! ```
//! use pres_core::api::Pres;
//! use pres_core::program::ClosureProgram;
//! use pres_core::sketch::Mechanism;
//! use pres_tvm::prelude::*;
//!
//! // A tiny racy program: two unprotected increments.
//! let mut spec = ResourceSpec::new();
//! let x = spec.var("x", 0);
//! let prog = ClosureProgram::new("demo", spec, WorldConfig::default(), move || {
//!     Box::new(move |ctx: &mut Ctx| {
//!         let t = ctx.spawn("w", move |ctx| {
//!             let v = ctx.read(x);
//!             ctx.compute(20);
//!             ctx.write(x, v + 1);
//!         });
//!         let v = ctx.read(x);
//!         ctx.compute(20);
//!         ctx.write(x, v + 1);
//!         ctx.join(t);
//!         let total = ctx.read(x);
//!         ctx.check(total == 2, "lost update");
//!     })
//! });
//!
//! let pres = Pres::new(Mechanism::Sync);
//! // Production: record (cheaply) until the bug bites.
//! let recorded = pres
//!     .record_until_failure(&prog, 0..2000)
//!     .expect("some production run fails");
//! // Diagnosis: search the unrecorded interleaving space.
//! let repro = pres.reproduce(&prog, &recorded);
//! assert!(repro.reproduced);
//! // Forever after: deterministic replay.
//! let cert = repro.certificate.unwrap();
//! cert.replay(&prog).expect("reproduces every time");
//! ```

use crate::explore::{self, ExecutorKind, ExploreConfig, FeedbackMode, Reproduction, Strategy};
use crate::recorder::{self, RecordedRun, RecordingReport, RingConfig};
use crate::sketch::Mechanism;
use crate::program::Program;
use pres_tvm::vm::VmConfig;

/// PRES configured for one mechanism and machine model.
#[derive(Debug, Clone)]
pub struct Pres {
    /// The sketching mechanism used during production recording.
    pub mechanism: Mechanism,
    /// The simulated machine (processors, cost model, step budget).
    pub vm: VmConfig,
    /// Exploration parameters for diagnosis time.
    pub explore: ExploreConfig,
    /// Always-on ring recording: when set, [`Pres::record`] and
    /// [`Pres::record_until_failure`] keep only the last
    /// `ring_epochs` epochs plus a restart checkpoint, and a failing
    /// run's sketch replays from that retained window.
    pub ring: Option<RingConfig>,
}

impl Pres {
    /// PRES with default machine and exploration settings.
    pub fn new(mechanism: Mechanism) -> Self {
        Pres {
            mechanism,
            vm: VmConfig::default(),
            explore: ExploreConfig::default(),
            ring: None,
        }
    }

    /// Switches recording to always-on ring mode with the given epoch
    /// budgets and retention.
    pub fn with_ring(mut self, ring: RingConfig) -> Self {
        self.ring = Some(ring);
        self
    }

    /// Sets the simulated processor count.
    pub fn with_processors(mut self, processors: u32) -> Self {
        self.vm.processors = processors;
        self
    }

    /// Sets the exploration strategy (feedback vs. the random ablation).
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.explore.strategy = strategy;
        self
    }

    /// Sets the attempt budget.
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.explore.max_attempts = max_attempts;
        self
    }

    /// Sets the number of worker threads racing reproduction attempts.
    /// `1` (the default) keeps the classic serial exploration loop.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.explore.workers = workers.max(1);
        self
    }

    /// Sets how failed attempts feed candidate extraction: streaming (the
    /// default; no per-attempt trace buffering) or buffered post-hoc
    /// analysis. Both produce identical search behavior.
    pub fn with_feedback_mode(mut self, mode: FeedbackMode) -> Self {
        self.explore.feedback_mode = mode;
        self
    }

    /// Sets which execution engine hosts attempt vthreads: pooled (the
    /// default; zero steady-state spawns) or spawning (one OS thread per
    /// vthread per attempt). Both produce identical results.
    pub fn with_executor(mut self, executor: ExecutorKind) -> Self {
        self.explore.executor = executor;
        self
    }

    /// Sets the per-worker executor pool's sizing hint (see
    /// [`ExploreConfig::validate`]; the pool grows on demand regardless).
    pub fn with_pool_width(mut self, width: usize) -> Self {
        self.explore.pool_width = width.max(1);
        self
    }

    /// Records one production run under this mechanism (running the
    /// workload natively as well, for exact overhead accounting).
    pub fn record(&self, program: &dyn Program, seed: u64) -> RecordedRun {
        match &self.ring {
            Some(ring) => {
                recorder::record_ring(program, self.mechanism, ring.clone(), &self.vm, seed)
            }
            None => recorder::record(program, self.mechanism, &self.vm, seed),
        }
    }

    /// Records production runs across `seeds` until one fails.
    pub fn record_until_failure(
        &self,
        program: &dyn Program,
        seeds: impl IntoIterator<Item = u64>,
    ) -> Option<RecordedRun> {
        match &self.ring {
            Some(ring) => recorder::record_ring_until_failure(
                program,
                self.mechanism,
                ring.clone(),
                &self.vm,
                seeds,
            ),
            None => recorder::record_until_failure(program, self.mechanism, &self.vm, seeds),
        }
    }

    /// The overhead/log-size report row for a recorded run.
    pub fn report(&self, run: &RecordedRun) -> RecordingReport {
        RecordingReport::from_run(run)
    }

    /// Reproduces the failure captured by a recorded run.
    ///
    /// # Panics
    ///
    /// Panics if the recorded run did not fail — there is nothing to
    /// reproduce from a clean run.
    pub fn reproduce(&self, program: &dyn Program, recorded: &RecordedRun) -> Reproduction {
        assert!(
            recorded.failed(),
            "reproduce() needs a failing production run; this one completed cleanly"
        );
        explore::reproduce(
            program,
            &recorded.sketch,
            &recorded.sketch.meta.failure_signature,
            &self.vm,
            &self.explore,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ClosureProgram;
    use pres_tvm::prelude::*;

    fn racy() -> impl Program {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        ClosureProgram::new("racy", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    let v = ctx.read(x);
                    ctx.compute(20);
                    ctx.write(x, v + 1);
                });
                let v = ctx.read(x);
                ctx.compute(20);
                ctx.write(x, v + 1);
                ctx.join(t);
                let total = ctx.read(x);
                ctx.check(total == 2, "lost update");
            })
        })
    }

    #[test]
    fn end_to_end_record_reproduce_certify() {
        let prog = racy();
        let pres = Pres::new(Mechanism::Sync);
        let recorded = pres
            .record_until_failure(&prog, 0..2000)
            .expect("failing production run");
        let repro = pres.reproduce(&prog, &recorded);
        assert!(repro.reproduced, "{:#?}", repro.history);
        let cert = repro.certificate.unwrap();
        for _ in 0..3 {
            cert.replay(&prog).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "failing production run")]
    fn reproducing_a_clean_run_is_a_programming_error() {
        // Deterministic single-thread program never fails.
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let prog = ClosureProgram::new("clean", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                ctx.write(x, 1);
            })
        });
        let pres = Pres::new(Mechanism::Sync);
        let run = pres.record(&prog, 0);
        let _ = pres.reproduce(&prog, &run);
    }

    #[test]
    fn builder_methods_configure() {
        let pres = Pres::new(Mechanism::Rw)
            .with_processors(16)
            .with_strategy(Strategy::Random)
            .with_max_attempts(50)
            .with_workers(4)
            .with_feedback_mode(FeedbackMode::Buffered)
            .with_executor(ExecutorKind::Spawning)
            .with_pool_width(2);
        assert_eq!(pres.vm.processors, 16);
        assert_eq!(pres.explore.strategy, Strategy::Random);
        assert_eq!(pres.explore.max_attempts, 50);
        assert_eq!(pres.explore.workers, 4);
        assert_eq!(pres.explore.feedback_mode, FeedbackMode::Buffered);
        assert_eq!(pres.explore.executor, ExecutorKind::Spawning);
        assert_eq!(pres.explore.pool_width, 2);
    }

    #[test]
    fn zero_workers_clamps_to_serial() {
        let pres = Pres::new(Mechanism::Sync).with_workers(0);
        assert_eq!(pres.explore.workers, 1);
    }

    #[test]
    fn ring_recording_reproduces_through_the_facade() {
        let prog = racy();
        let pres = Pres::new(Mechanism::Sync).with_ring(RingConfig::default());
        let recorded = pres
            .record_until_failure(&prog, 0..2000)
            .expect("failing production run");
        assert!(
            recorded.sketch.checkpoint.is_some(),
            "ring mode always attaches a checkpoint"
        );
        let repro = pres.reproduce(&prog, &recorded);
        assert!(repro.reproduced, "{:#?}", repro.history);
        repro.certificate.unwrap().replay(&prog).unwrap();
    }

    #[test]
    fn parallel_reproduce_agrees_with_serial() {
        let prog = racy();
        let recorded = Pres::new(Mechanism::Sync)
            .record_until_failure(&prog, 0..2000)
            .expect("failing production run");
        let serial = Pres::new(Mechanism::Sync).reproduce(&prog, &recorded);
        let parallel = Pres::new(Mechanism::Sync)
            .with_workers(4)
            .reproduce(&prog, &recorded);
        assert_eq!(serial.reproduced, parallel.reproduced);
        let cert = parallel.certificate.expect("parallel certificate");
        cert.replay(&prog).expect("reproduces every time");
    }
}
