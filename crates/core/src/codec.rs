//! Compact binary encoding of sketches — the on-disk log format.
//!
//! The paper reports recording overhead *and* log growth; both depend on a
//! realistic log encoding. Two container versions share a common header
//! (magic, version byte, mechanism, run metadata):
//!
//! * **v1** — a flat entry stream: single-byte tags and LEB128 varints,
//!   one `(tid, tag, operand, result?)` record per entry in sketch order.
//! * **v2** (default) — a columnar layout: a thread directory
//!   (delta-encoded tids + per-thread entry counts), an interleave stream
//!   capturing the cross-thread order (plain or run-length encoded,
//!   whichever is smaller), and one column block per thread whose entries
//!   carry a one-byte op-kind dictionary code and a zigzag-varint operand
//!   delta against the previous operand of the same kind group on that
//!   thread. Same-thread runs and locally clustered ids — the common case
//!   for marker-dense sketches — collapse to a byte or two per entry.
//!
//! [`decode_sketch`] accepts both versions via the version byte, so logs
//! written by older recorders keep decoding.
//!
//! The same codec serializes reproduction certificates.

use crate::sketch::{
    EpochInfo, Mechanism, Sketch, SketchCheckpoint, SketchEntry, SketchMeta, SketchOp, SyncKind,
    SysKind,
};
use pres_tvm::ids::ThreadId;
use pres_tvm::op::{MemLoc, OpResult};
use std::fmt;

/// A decoding error: truncated or corrupt input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for DecodeError {}

/// LEB128 varint writer/reader plus raw-byte helpers.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends length-prefixed bytes.
    pub fn bytes(&mut self, data: &[u8]) {
        self.varint(data.len() as u64);
        self.buf.extend_from_slice(data);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Finishes, returning the encoded buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Reader over an encoded buffer.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn err(&self, message: &str) -> DecodeError {
        DecodeError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.err("eof"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err(self.err("varint overflow"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.varint()? as usize;
        if self.pos + len > self.buf.len() {
            return Err(self.err("byte slice past eof"));
        }
        let out = self.buf[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Ok(out)
    }

    /// Reads a length-prefixed string.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        String::from_utf8(self.bytes()?).map_err(|_| self.err("invalid utf-8"))
    }

    /// Whether the whole buffer was consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Current byte offset into the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }
}

// --- entry encoding ---------------------------------------------------------

const TAG_START: u8 = 0;
const TAG_EXIT: u8 = 1;
const TAG_MEM_READ: u8 = 2;
const TAG_MEM_WRITE: u8 = 3;
const TAG_SYNC: u8 = 4;
const TAG_SPAWN: u8 = 5;
const TAG_JOIN: u8 = 6;
const TAG_SYS: u8 = 7;
const TAG_FUNC: u8 = 8;
const TAG_BB: u8 = 9;

const RES_UNIT: u8 = 0;
const RES_VALUE: u8 = 1;
const RES_BYTES: u8 = 2;
const RES_MAYBE_BYTES_NONE: u8 = 3;
const RES_MAYBE_BYTES_SOME: u8 = 4;
const RES_MAYBE_VALUE_NONE: u8 = 5;
const RES_MAYBE_VALUE_SOME: u8 = 6;
const RES_MAYBE_CONN_NONE: u8 = 7;
const RES_MAYBE_CONN_SOME: u8 = 8;
const RES_FD: u8 = 9;
const RES_TID: u8 = 10;

fn sync_kind_code(k: SyncKind) -> u8 {
    match k {
        SyncKind::Lock => 0,
        SyncKind::Unlock => 1,
        SyncKind::RwRead => 2,
        SyncKind::RwWrite => 3,
        SyncKind::RwUnlock => 4,
        SyncKind::Wait => 5,
        SyncKind::Rewait => 6,
        SyncKind::Signal => 7,
        SyncKind::Broadcast => 8,
        SyncKind::Barrier => 9,
        SyncKind::BarrierResume => 10,
        SyncKind::SemP => 11,
        SyncKind::SemV => 12,
        SyncKind::Send => 13,
        SyncKind::Recv => 14,
        SyncKind::ChanClose => 15,
    }
}

fn sync_kind_from(code: u8) -> Option<SyncKind> {
    Some(match code {
        0 => SyncKind::Lock,
        1 => SyncKind::Unlock,
        2 => SyncKind::RwRead,
        3 => SyncKind::RwWrite,
        4 => SyncKind::RwUnlock,
        5 => SyncKind::Wait,
        6 => SyncKind::Rewait,
        7 => SyncKind::Signal,
        8 => SyncKind::Broadcast,
        9 => SyncKind::Barrier,
        10 => SyncKind::BarrierResume,
        11 => SyncKind::SemP,
        12 => SyncKind::SemV,
        13 => SyncKind::Send,
        14 => SyncKind::Recv,
        15 => SyncKind::ChanClose,
        _ => return None,
    })
}

fn sys_kind_code(k: SysKind) -> u8 {
    match k {
        SysKind::Open => 0,
        SysKind::Read => 1,
        SysKind::Write => 2,
        SysKind::Close => 3,
        SysKind::Accept => 4,
        SysKind::Recv => 5,
        SysKind::Send => 6,
        SysKind::NetClose => 7,
        SysKind::Clock => 8,
        SysKind::Random => 9,
        SysKind::Stdout => 10,
    }
}

fn sys_kind_from(code: u8) -> Option<SysKind> {
    Some(match code {
        0 => SysKind::Open,
        1 => SysKind::Read,
        2 => SysKind::Write,
        3 => SysKind::Close,
        4 => SysKind::Accept,
        5 => SysKind::Recv,
        6 => SysKind::Send,
        7 => SysKind::NetClose,
        8 => SysKind::Clock,
        9 => SysKind::Random,
        10 => SysKind::Stdout,
        _ => return None,
    })
}

fn encode_result(w: &mut ByteWriter, r: &OpResult) {
    match r {
        OpResult::Unit => w.u8(RES_UNIT),
        OpResult::Value(v) => {
            w.u8(RES_VALUE);
            w.varint(*v);
        }
        OpResult::Bytes(b) => {
            w.u8(RES_BYTES);
            w.bytes(b);
        }
        OpResult::MaybeBytes(None) => w.u8(RES_MAYBE_BYTES_NONE),
        OpResult::MaybeBytes(Some(b)) => {
            w.u8(RES_MAYBE_BYTES_SOME);
            w.bytes(b);
        }
        OpResult::MaybeValue(None) => w.u8(RES_MAYBE_VALUE_NONE),
        OpResult::MaybeValue(Some(v)) => {
            w.u8(RES_MAYBE_VALUE_SOME);
            w.varint(*v);
        }
        OpResult::MaybeConn(None) => w.u8(RES_MAYBE_CONN_NONE),
        OpResult::MaybeConn(Some(c)) => {
            w.u8(RES_MAYBE_CONN_SOME);
            w.varint(u64::from(c.0));
        }
        OpResult::Fd(fd) => {
            w.u8(RES_FD);
            w.varint(u64::from(fd.0));
        }
        OpResult::Tid(t) => {
            w.u8(RES_TID);
            w.varint(u64::from(t.0));
        }
    }
}

fn decode_result(r: &mut ByteReader<'_>) -> Result<OpResult, DecodeError> {
    Ok(match r.u8()? {
        RES_UNIT => OpResult::Unit,
        RES_VALUE => OpResult::Value(r.varint()?),
        RES_BYTES => OpResult::Bytes(r.bytes()?),
        RES_MAYBE_BYTES_NONE => OpResult::MaybeBytes(None),
        RES_MAYBE_BYTES_SOME => OpResult::MaybeBytes(Some(r.bytes()?)),
        RES_MAYBE_VALUE_NONE => OpResult::MaybeValue(None),
        RES_MAYBE_VALUE_SOME => OpResult::MaybeValue(Some(r.varint()?)),
        RES_MAYBE_CONN_NONE => OpResult::MaybeConn(None),
        RES_MAYBE_CONN_SOME => {
            OpResult::MaybeConn(Some(pres_tvm::ids::ConnId(r.varint()? as u32)))
        }
        RES_FD => OpResult::Fd(pres_tvm::ids::FdId(r.varint()? as u32)),
        RES_TID => OpResult::Tid(ThreadId(r.varint()? as u32)),
        other => return Err(r.err(&format!("unknown result tag {other}"))),
    })
}

/// Encodes one entry; returns bytes appended.
pub fn encode_entry(w: &mut ByteWriter, e: &SketchEntry) -> usize {
    let before = w.len();
    w.varint(u64::from(e.tid.0));
    match &e.op {
        SketchOp::Start => w.u8(TAG_START),
        SketchOp::Exit => w.u8(TAG_EXIT),
        SketchOp::Mem { loc, write } => {
            w.u8(if *write { TAG_MEM_WRITE } else { TAG_MEM_READ });
            match loc {
                MemLoc::Var(v) => {
                    w.u8(0);
                    w.varint(u64::from(v.0));
                }
                MemLoc::Buf(b) => {
                    w.u8(1);
                    w.varint(u64::from(b.0));
                }
            }
        }
        SketchOp::Sync { kind, obj } => {
            w.u8(TAG_SYNC);
            w.u8(sync_kind_code(*kind));
            w.varint(u64::from(*obj));
        }
        SketchOp::Spawn => w.u8(TAG_SPAWN),
        SketchOp::Join { target } => {
            w.u8(TAG_JOIN);
            w.varint(u64::from(*target));
        }
        SketchOp::Sys { kind, obj } => {
            w.u8(TAG_SYS);
            w.u8(sys_kind_code(*kind));
            w.varint(u64::from(*obj));
            encode_result(w, &e.result);
        }
        SketchOp::Func(f) => {
            w.u8(TAG_FUNC);
            w.varint(u64::from(*f));
        }
        SketchOp::Bb(b) => {
            w.u8(TAG_BB);
            w.varint(u64::from(*b));
        }
    }
    w.len() - before
}

fn decode_entry(r: &mut ByteReader<'_>) -> Result<SketchEntry, DecodeError> {
    let tid = ThreadId(r.varint()? as u32);
    let tag = r.u8()?;
    let mut result = OpResult::Unit;
    let op = match tag {
        TAG_START => SketchOp::Start,
        TAG_EXIT => SketchOp::Exit,
        TAG_MEM_READ | TAG_MEM_WRITE => {
            let kind = r.u8()?;
            let id = r.varint()? as u32;
            let loc = match kind {
                0 => MemLoc::Var(pres_tvm::ids::VarId(id)),
                1 => MemLoc::Buf(pres_tvm::ids::BufId(id)),
                other => return Err(r.err(&format!("unknown loc kind {other}"))),
            };
            SketchOp::Mem {
                loc,
                write: tag == TAG_MEM_WRITE,
            }
        }
        TAG_SYNC => {
            let code = r.u8()?;
            let kind =
                sync_kind_from(code).ok_or_else(|| r.err(&format!("bad sync kind {code}")))?;
            SketchOp::Sync {
                kind,
                obj: r.varint()? as u32,
            }
        }
        TAG_SPAWN => SketchOp::Spawn,
        TAG_JOIN => SketchOp::Join {
            target: r.varint()? as u32,
        },
        TAG_SYS => {
            let code = r.u8()?;
            let kind =
                sys_kind_from(code).ok_or_else(|| r.err(&format!("bad sys kind {code}")))?;
            let obj = r.varint()? as u32;
            result = decode_result(r)?;
            SketchOp::Sys { kind, obj }
        }
        TAG_FUNC => SketchOp::Func(r.varint()? as u32),
        TAG_BB => SketchOp::Bb(r.varint()? as u32),
        other => return Err(r.err(&format!("unknown entry tag {other}"))),
    };
    Ok(SketchEntry { tid, op, result })
}

impl ByteReader<'_> {
    fn err_pub(&self, message: &str) -> DecodeError {
        self.err(message)
    }
}

const MAGIC: &[u8; 4] = b"PRES";
const VERSION_V1: u8 = 1;
const VERSION_V2: u8 = 2;
/// v3 = v2 columnar body prefixed by a checkpoint segment. Only v3
/// containers carry checkpoints, so corrupt v1/v2 input can never decode
/// into a phantom checkpoint.
const VERSION_V3: u8 = 3;

fn mechanism_code(m: Mechanism) -> (u8, u32) {
    match m {
        Mechanism::Rw => (0, 0),
        Mechanism::Sync => (1, 0),
        Mechanism::Sys => (2, 0),
        Mechanism::Func => (3, 0),
        Mechanism::Bb => (4, 0),
        Mechanism::BbN(n) => (5, n),
    }
}

fn mechanism_from(code: u8, arg: u32) -> Option<Mechanism> {
    Some(match code {
        0 => Mechanism::Rw,
        1 => Mechanism::Sync,
        2 => Mechanism::Sys,
        3 => Mechanism::Func,
        4 => Mechanism::Bb,
        5 => Mechanism::BbN(arg),
        _ => return None,
    })
}

fn encode_header(w: &mut ByteWriter, sketch: &Sketch, version: u8) {
    w.buf.extend_from_slice(MAGIC);
    w.u8(version);
    let (code, arg) = mechanism_code(sketch.mechanism);
    w.u8(code);
    w.varint(u64::from(arg));
    w.string(&sketch.meta.program);
    w.varint(sketch.meta.seed);
    w.varint(u64::from(sketch.meta.processors));
    w.varint(sketch.meta.total_ops);
    w.string(&sketch.meta.failure_signature);
}

/// Serializes a sketch to its binary log form: the [v2](self) columnar
/// container, or v3 (checkpoint segment + v2 body) when the sketch
/// carries a ring-flush checkpoint.
pub fn encode_sketch(sketch: &Sketch) -> Vec<u8> {
    if sketch.checkpoint.is_some() {
        encode_sketch_v3(sketch)
    } else {
        encode_sketch_v2(sketch)
    }
}

/// Serializes a sketch in the legacy v1 flat-stream container. Kept for
/// fixtures and codec-size comparisons; [`decode_sketch`] still accepts
/// its output.
pub fn encode_sketch_v1(sketch: &Sketch) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_header(&mut w, sketch, VERSION_V1);
    w.varint(sketch.entries.len() as u64);
    for e in &sketch.entries {
        encode_entry(&mut w, e);
    }
    w.finish()
}

// --- v2 columnar container --------------------------------------------------

// One-byte op-kind dictionary. Sync and sys kinds fold into the code so a
// v2 entry needs no separate kind byte. The dictionary occupies the low 6
// bits; the top two bits encode the operand delta for the two overwhelmingly
// common cases (same object as last time: locks, hot counters; successor
// id: straight-line basic blocks), making such entries a single byte.
const CODE_START: u8 = 0;
const CODE_EXIT: u8 = 1;
const CODE_SPAWN: u8 = 2;
const CODE_MEM_READ_VAR: u8 = 3;
const CODE_MEM_WRITE_VAR: u8 = 4;
const CODE_MEM_READ_BUF: u8 = 5;
const CODE_MEM_WRITE_BUF: u8 = 6;
const CODE_JOIN: u8 = 7;
const CODE_FUNC: u8 = 8;
const CODE_BB: u8 = 9;
const CODE_SYNC_BASE: u8 = 10; // + sync_kind_code: 10..=25
const CODE_SYS_BASE: u8 = 26; // + sys_kind_code: 26..=36

/// Operand delta folded into the code byte's top two bits.
const FLAG_SHIFT: u32 = 6;
const FLAG_VARINT: u8 = 0; // zigzag varint delta follows
const FLAG_DELTA_ZERO: u8 = 1; // operand == previous in group
const FLAG_DELTA_ONE: u8 = 2; // operand == previous + 1
const CODE_MASK: u8 = (1 << FLAG_SHIFT) - 1;

/// Operand delta groups: each thread keeps one "previous operand" per
/// group, so e.g. basic-block ids delta against the last basic-block id
/// on the same thread, not against an unrelated lock id.
const GROUP_MEM_VAR: usize = 0;
const GROUP_MEM_BUF: usize = 1;
const GROUP_SYNC: usize = 2;
const GROUP_SYS: usize = 3;
const GROUP_FUNC: usize = 4;
const GROUP_BB: usize = 5;
const GROUP_JOIN: usize = 6;
const GROUPS: usize = 7;

/// The dictionary code and (delta group, operand) of an op; operand is
/// `None` for the three operand-free lifecycle codes.
fn op_code(op: &SketchOp) -> (u8, Option<(usize, u32)>) {
    match op {
        SketchOp::Start => (CODE_START, None),
        SketchOp::Exit => (CODE_EXIT, None),
        SketchOp::Spawn => (CODE_SPAWN, None),
        SketchOp::Mem { loc, write } => match loc {
            MemLoc::Var(v) => (
                if *write {
                    CODE_MEM_WRITE_VAR
                } else {
                    CODE_MEM_READ_VAR
                },
                Some((GROUP_MEM_VAR, v.0)),
            ),
            MemLoc::Buf(b) => (
                if *write {
                    CODE_MEM_WRITE_BUF
                } else {
                    CODE_MEM_READ_BUF
                },
                Some((GROUP_MEM_BUF, b.0)),
            ),
        },
        SketchOp::Join { target } => (CODE_JOIN, Some((GROUP_JOIN, *target))),
        SketchOp::Func(f) => (CODE_FUNC, Some((GROUP_FUNC, *f))),
        SketchOp::Bb(b) => (CODE_BB, Some((GROUP_BB, *b))),
        SketchOp::Sync { kind, obj } => {
            (CODE_SYNC_BASE + sync_kind_code(*kind), Some((GROUP_SYNC, *obj)))
        }
        SketchOp::Sys { kind, obj } => {
            (CODE_SYS_BASE + sys_kind_code(*kind), Some((GROUP_SYS, *obj)))
        }
    }
}

/// The delta group an operand-carrying code reads/writes, or `None` for
/// operand-free codes. Unknown codes also return `None`; the decoder
/// rejects them separately.
fn code_group(code: u8) -> Option<usize> {
    match code {
        CODE_MEM_READ_VAR | CODE_MEM_WRITE_VAR => Some(GROUP_MEM_VAR),
        CODE_MEM_READ_BUF | CODE_MEM_WRITE_BUF => Some(GROUP_MEM_BUF),
        CODE_JOIN => Some(GROUP_JOIN),
        CODE_FUNC => Some(GROUP_FUNC),
        CODE_BB => Some(GROUP_BB),
        c if (CODE_SYNC_BASE..CODE_SYS_BASE).contains(&c) => Some(GROUP_SYNC),
        c if (CODE_SYS_BASE..=CODE_SYS_BASE + 10).contains(&c) => Some(GROUP_SYS),
        _ => None,
    }
}

fn op_from_code(code: u8, operand: u32) -> Option<SketchOp> {
    Some(match code {
        CODE_START => SketchOp::Start,
        CODE_EXIT => SketchOp::Exit,
        CODE_SPAWN => SketchOp::Spawn,
        CODE_MEM_READ_VAR | CODE_MEM_WRITE_VAR => SketchOp::Mem {
            loc: MemLoc::Var(pres_tvm::ids::VarId(operand)),
            write: code == CODE_MEM_WRITE_VAR,
        },
        CODE_MEM_READ_BUF | CODE_MEM_WRITE_BUF => SketchOp::Mem {
            loc: MemLoc::Buf(pres_tvm::ids::BufId(operand)),
            write: code == CODE_MEM_WRITE_BUF,
        },
        CODE_JOIN => SketchOp::Join { target: operand },
        CODE_FUNC => SketchOp::Func(operand),
        CODE_BB => SketchOp::Bb(operand),
        c if (CODE_SYNC_BASE..CODE_SYS_BASE).contains(&c) => SketchOp::Sync {
            kind: sync_kind_from(c - CODE_SYNC_BASE)?,
            obj: operand,
        },
        c if (CODE_SYS_BASE..=CODE_SYS_BASE + 10).contains(&c) => SketchOp::Sys {
            kind: sys_kind_from(c - CODE_SYS_BASE)?,
            obj: operand,
        },
        _ => return None,
    })
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Serializes a sketch in the v2 columnar container.
pub fn encode_sketch_v2(sketch: &Sketch) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_header(&mut w, sketch, VERSION_V2);
    encode_body_v2(&mut w, sketch);
    w.finish()
}

/// Serializes a checkpoint-bearing sketch in the v3 container: common
/// header, checkpoint segment, then the identical v2 columnar body over
/// the retained window's entries.
pub fn encode_sketch_v3(sketch: &Sketch) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_header(&mut w, sketch, VERSION_V3);
    let cp = sketch
        .checkpoint
        .as_deref()
        .expect("v3 container requires a checkpoint");
    encode_checkpoint(&mut w, cp);
    encode_body_v2(&mut w, sketch);
    w.finish()
}

fn encode_checkpoint(w: &mut ByteWriter, cp: &SketchCheckpoint) {
    w.varint(cp.boundary);
    w.varint(cp.production_seed);
    w.varint(cp.dropped_epochs);
    w.varint(cp.dropped_entries);
    w.varint(cp.bbn_counters.len() as u64);
    for c in &cp.bbn_counters {
        w.varint(*c);
    }
    w.varint(cp.epochs.len() as u64);
    for e in &cp.epochs {
        w.varint(e.index);
        w.varint(e.start_picks);
        w.varint(e.entries);
    }
    w.bytes(&cp.snapshot);
}

fn decode_checkpoint(r: &mut ByteReader<'_>) -> Result<SketchCheckpoint, DecodeError> {
    let boundary = r.varint()?;
    let production_seed = r.varint()?;
    let dropped_epochs = r.varint()?;
    let dropped_entries = r.varint()?;
    let remaining = |r: &ByteReader<'_>| r.buf.len() - r.pos;
    let nc = r.varint()? as usize;
    if nc > remaining(r) {
        return Err(r.err("bbn counter count past eof"));
    }
    let mut bbn_counters = Vec::with_capacity(nc);
    for _ in 0..nc {
        bbn_counters.push(r.varint()?);
    }
    let ne = r.varint()? as usize;
    if ne > remaining(r) {
        return Err(r.err("epoch directory count past eof"));
    }
    let mut epochs = Vec::with_capacity(ne);
    for _ in 0..ne {
        epochs.push(EpochInfo {
            index: r.varint()?,
            start_picks: r.varint()?,
            entries: r.varint()?,
        });
    }
    let snapshot = r.bytes()?;
    // A checkpoint is only as trustworthy as its snapshot: validate the
    // embedded blob in full here so corruption surfaces at decode time,
    // never as a phantom restore target.
    if boundary == 0 {
        if !snapshot.is_empty() {
            return Err(r.err("genesis checkpoint carries a snapshot"));
        }
    } else {
        let snap = pres_tvm::snapshot::VmSnapshot::decode(&snapshot)
            .map_err(|e| r.err(&format!("embedded vm snapshot: {e}")))?;
        if snap.picks() != boundary {
            return Err(r.err("snapshot pick count disagrees with checkpoint boundary"));
        }
    }
    Ok(SketchCheckpoint {
        boundary,
        production_seed,
        dropped_epochs,
        dropped_entries,
        bbn_counters,
        epochs,
        snapshot,
    })
}

/// Writes everything after the header of a v2/v3 container: entry count,
/// thread directory, interleave stream, and per-thread column blocks.
fn encode_body_v2(w: &mut ByteWriter, sketch: &Sketch) {
    w.varint(sketch.entries.len() as u64);

    // Thread directory: ascending tids, delta-encoded. Per-thread entry
    // counts are *not* stored — the decoder recovers them by counting the
    // interleave stream.
    let mut by_tid: std::collections::BTreeMap<u32, Vec<&SketchEntry>> =
        std::collections::BTreeMap::new();
    for e in &sketch.entries {
        by_tid.entry(e.tid.0).or_default().push(e);
    }
    w.varint(by_tid.len() as u64);
    let mut prev_tid: Option<u32> = None;
    for &tid in by_tid.keys() {
        match prev_tid {
            None => w.varint(u64::from(tid)),
            Some(p) => w.varint(u64::from(tid - p - 1)),
        }
        prev_tid = Some(tid);
    }
    let index_of: std::collections::BTreeMap<u32, usize> = by_tid
        .keys()
        .enumerate()
        .map(|(i, &tid)| (tid, i))
        .collect();

    // Interleave stream: the cross-thread order as thread indices. Three
    // encodings — plain varints, run-length pairs, and (for ≤16 threads)
    // two indices nibble-packed per byte; the smallest wins.
    let indices: Vec<usize> = sketch
        .entries
        .iter()
        .map(|e| index_of[&e.tid.0])
        .collect();
    let mut plain = ByteWriter::new();
    let mut runs: Vec<(usize, u64)> = Vec::new();
    for &idx in &indices {
        plain.varint(idx as u64);
        match runs.last_mut() {
            Some((last, len)) if *last == idx => *len += 1,
            _ => runs.push((idx, 1)),
        }
    }
    let mut rle = ByteWriter::new();
    rle.varint(runs.len() as u64);
    for (idx, len) in &runs {
        rle.varint(*idx as u64);
        rle.varint(*len);
    }
    let nibble = if by_tid.len() <= 16 {
        let mut nw = ByteWriter::new();
        for pair in indices.chunks(2) {
            let lo = pair[0] as u8;
            let hi = if pair.len() == 2 { pair[1] as u8 } else { 0 };
            nw.u8(lo | (hi << 4));
        }
        Some(nw)
    } else {
        None
    };
    let mut candidates: Vec<(u8, ByteWriter)> = vec![(0, plain), (1, rle)];
    if let Some(nw) = nibble {
        candidates.push((2, nw));
    }
    let (flag, body) = candidates
        .into_iter()
        .min_by_key(|(flag, body)| (body.len(), *flag))
        .expect("candidates is non-empty");
    w.u8(flag);
    w.buf.extend_from_slice(&body.finish());

    // Column blocks: per thread, dictionary code + operand delta (+ result
    // for syscalls, which replay must reproduce verbatim).
    for col in by_tid.values() {
        let mut prevs = [0i64; GROUPS];
        for e in col {
            let (code, operand) = op_code(&e.op);
            match operand {
                Some((group, value)) => {
                    let delta = i64::from(value) - prevs[group];
                    prevs[group] = i64::from(value);
                    match delta {
                        0 => w.u8(code | (FLAG_DELTA_ZERO << FLAG_SHIFT)),
                        1 => w.u8(code | (FLAG_DELTA_ONE << FLAG_SHIFT)),
                        _ => {
                            w.u8(code);
                            w.varint(zigzag(delta));
                        }
                    }
                }
                None => w.u8(code),
            }
            if matches!(e.op, SketchOp::Sys { .. }) {
                encode_result(w, &e.result);
            }
        }
    }
}

fn decode_entries_v1(r: &mut ByteReader<'_>) -> Result<Vec<SketchEntry>, DecodeError> {
    let n = r.varint()? as usize;
    let mut entries = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        entries.push(decode_entry(r)?);
    }
    Ok(entries)
}

/// One per-thread shard of a v2 columnar container: how many entries the
/// thread contributed and how many bytes its column block occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V2Shard {
    /// The thread id owning the column.
    pub tid: u32,
    /// Entries in the column.
    pub entries: u64,
    /// Encoded bytes of the column block (codes, operand deltas, syscall
    /// results).
    pub column_bytes: u64,
}

/// The physical layout of a v2 container body, per shard — what
/// `pres sketch-info` prints as the shard directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct V2Layout {
    /// Total entries in the container.
    pub entries: u64,
    /// How the cross-thread interleave stream is encoded.
    pub interleave_encoding: &'static str,
    /// Bytes of the interleave stream (including its selector byte).
    pub interleave_bytes: u64,
    /// Per-thread shards, ascending by thread id.
    pub threads: Vec<V2Shard>,
}

fn decode_entries_v2(r: &mut ByteReader<'_>) -> Result<Vec<SketchEntry>, DecodeError> {
    Ok(decode_entries_v2_with_layout(r)?.0)
}

fn decode_entries_v2_with_layout(
    r: &mut ByteReader<'_>,
) -> Result<(Vec<SketchEntry>, V2Layout), DecodeError> {
    let n = r.varint()? as usize;
    let t = r.varint()? as usize;
    if t > n {
        return Err(r.err("thread directory larger than entry count"));
    }

    let mut tids: Vec<u32> = Vec::with_capacity(t);
    for i in 0..t {
        let raw = r.varint()?;
        let tid = if i == 0 {
            raw
        } else {
            u64::from(tids[i - 1]) + 1 + raw
        };
        let tid = u32::try_from(tid).map_err(|_| r.err("thread id out of range"))?;
        tids.push(tid);
    }

    let interleave_start = r.position();
    let flag = r.u8()?;
    let mut interleave: Vec<usize> = Vec::with_capacity(n.min(1 << 20));
    match flag {
        0 => {
            for _ in 0..n {
                let idx = r.varint()? as usize;
                if idx >= t {
                    return Err(r.err("interleave thread index out of range"));
                }
                interleave.push(idx);
            }
        }
        1 => {
            let runs = r.varint()? as usize;
            for _ in 0..runs {
                let idx = r.varint()? as usize;
                if idx >= t {
                    return Err(r.err("interleave thread index out of range"));
                }
                let len = r.varint()? as usize;
                if interleave.len() + len > n {
                    return Err(r.err("interleave runs exceed entry count"));
                }
                interleave.extend(std::iter::repeat_n(idx, len));
            }
            if interleave.len() != n {
                return Err(r.err("interleave runs do not cover entry count"));
            }
        }
        2 => {
            if t > 16 {
                return Err(r.err("nibble interleave with more than 16 threads"));
            }
            for _ in 0..n.div_ceil(2) {
                let byte = r.u8()?;
                for idx in [byte & 0x0f, byte >> 4] {
                    if interleave.len() == n {
                        if idx != 0 {
                            return Err(r.err("nonzero nibble padding"));
                        }
                        continue;
                    }
                    let idx = idx as usize;
                    if idx >= t {
                        return Err(r.err("interleave thread index out of range"));
                    }
                    interleave.push(idx);
                }
            }
        }
        other => return Err(r.err(&format!("unknown interleave flag {other}"))),
    }
    let interleave_bytes = (r.position() - interleave_start) as u64;
    let interleave_encoding = match flag {
        0 => "plain",
        1 => "rle",
        _ => "nibble",
    };

    // Per-thread entry counts are implicit in the interleave stream.
    let mut counts: Vec<usize> = vec![0; t];
    for &idx in &interleave {
        counts[idx] += 1;
    }
    if counts.contains(&0) {
        return Err(r.err("empty thread column"));
    }

    let mut columns: Vec<Vec<SketchEntry>> = Vec::with_capacity(t);
    let mut shards: Vec<V2Shard> = Vec::with_capacity(t);
    for (i, &count) in counts.iter().enumerate() {
        let column_start = r.position();
        let mut col = Vec::with_capacity(count.min(1 << 20));
        let mut prevs = [0i64; GROUPS];
        for _ in 0..count {
            let byte = r.u8()?;
            let code = byte & CODE_MASK;
            let flag = byte >> FLAG_SHIFT;
            let operand = match code_group(code) {
                Some(group) => {
                    let delta = match flag {
                        FLAG_VARINT => unzigzag(r.varint()?),
                        FLAG_DELTA_ZERO => 0,
                        FLAG_DELTA_ONE => 1,
                        other => return Err(r.err(&format!("reserved delta flag {other}"))),
                    };
                    let value = prevs[group]
                        .checked_add(delta)
                        .ok_or_else(|| r.err("operand delta overflow"))?;
                    let v = u32::try_from(value).map_err(|_| r.err("operand out of range"))?;
                    prevs[group] = value;
                    v
                }
                None => {
                    if flag != FLAG_VARINT {
                        return Err(r.err(&format!("delta flag on operand-free code {code}")));
                    }
                    0
                }
            };
            let op = op_from_code(code, operand)
                .ok_or_else(|| r.err(&format!("unknown op code {code}")))?;
            let result = if matches!(op, SketchOp::Sys { .. }) {
                decode_result(r)?
            } else {
                OpResult::Unit
            };
            col.push(SketchEntry {
                tid: ThreadId(tids[i]),
                op,
                result,
            });
        }
        shards.push(V2Shard {
            tid: tids[i],
            entries: count as u64,
            column_bytes: (r.position() - column_start) as u64,
        });
        columns.push(col);
    }

    let mut iters: Vec<std::vec::IntoIter<SketchEntry>> =
        columns.into_iter().map(Vec::into_iter).collect();
    let mut entries = Vec::with_capacity(n.min(1 << 20));
    for idx in interleave {
        let e = iters[idx]
            .next()
            .ok_or_else(|| r.err("interleave exhausts a thread column"))?;
        entries.push(e);
    }
    let layout = V2Layout {
        entries: n as u64,
        interleave_encoding,
        interleave_bytes,
        threads: shards,
    };
    Ok((entries, layout))
}

/// Deserializes a sketch from its binary log form (either container
/// version — see the version byte).
fn decode_header(
    r: &mut ByteReader<'_>,
) -> Result<(u8, Mechanism, SketchMeta), DecodeError> {
    let mut magic = [0u8; 4];
    for m in &mut magic {
        *m = r.u8()?;
    }
    if &magic != MAGIC {
        return Err(r.err_pub("bad magic"));
    }
    let version = r.u8()?;
    let code = r.u8()?;
    let arg = r.varint()? as u32;
    let mechanism =
        mechanism_from(code, arg).ok_or_else(|| r.err_pub(&format!("bad mechanism {code}")))?;
    let meta = SketchMeta {
        program: r.string()?,
        seed: r.varint()?,
        processors: r.varint()? as u32,
        total_ops: r.varint()?,
        failure_signature: r.string()?,
    };
    Ok((version, mechanism, meta))
}

pub fn decode_sketch(data: &[u8]) -> Result<Sketch, DecodeError> {
    let mut r = ByteReader::new(data);
    let (version, mechanism, meta) = decode_header(&mut r)?;
    let mut checkpoint = None;
    let entries = match version {
        VERSION_V1 => decode_entries_v1(&mut r)?,
        VERSION_V2 => decode_entries_v2(&mut r)?,
        VERSION_V3 => {
            checkpoint = Some(Box::new(decode_checkpoint(&mut r)?));
            decode_entries_v2(&mut r)?
        }
        other => return Err(r.err_pub(&format!("unsupported version {other}"))),
    };
    if !r.at_end() {
        return Err(r.err_pub("trailing bytes"));
    }
    Ok(Sketch {
        mechanism,
        entries,
        meta,
        checkpoint,
    })
}

/// The physical shard directory of a v2/v3 container: per-thread entry
/// and column-byte counts plus the interleave-stream encoding. Returns
/// `Ok(None)` for a (shard-free) v1 container; errors mirror
/// [`decode_sketch`] on corrupt input.
pub fn v2_layout(data: &[u8]) -> Result<Option<V2Layout>, DecodeError> {
    let mut r = ByteReader::new(data);
    let (version, _, _) = decode_header(&mut r)?;
    match version {
        VERSION_V1 => Ok(None),
        VERSION_V2 | VERSION_V3 => {
            if version == VERSION_V3 {
                decode_checkpoint(&mut r)?;
            }
            let (_, layout) = decode_entries_v2_with_layout(&mut r)?;
            if !r.at_end() {
                return Err(r.err_pub("trailing bytes"));
            }
            Ok(Some(layout))
        }
        other => Err(r.err_pub(&format!("unsupported version {other}"))),
    }
}

/// The encoded byte span of a v3 container's checkpoint segment (header
/// excluded), for size reporting — `Ok(None)` for v1/v2 containers.
pub fn checkpoint_segment_bytes(data: &[u8]) -> Result<Option<u64>, DecodeError> {
    let mut r = ByteReader::new(data);
    let (version, _, _) = decode_header(&mut r)?;
    if version != VERSION_V3 {
        return Ok(None);
    }
    let start = r.position();
    decode_checkpoint(&mut r)?;
    Ok(Some((r.position() - start) as u64))
}

/// The container version byte of an encoded sketch (after validating the
/// magic). Lets tools report the format without a full decode.
pub fn container_version(data: &[u8]) -> Result<u8, DecodeError> {
    let mut r = ByteReader::new(data);
    let mut magic = [0u8; 4];
    for m in &mut magic {
        *m = r.u8()?;
    }
    if &magic != MAGIC {
        return Err(r.err_pub("bad magic"));
    }
    r.u8()
}

/// The number of bytes a value occupies as a LEB128 varint.
fn varint_size(v: u64) -> u64 {
    if v == 0 {
        1
    } else {
        u64::from((64 - v.leading_zeros()).div_ceil(7))
    }
}

/// The number of bytes [`encode_result`] writes for a result.
fn result_size(r: &OpResult) -> u64 {
    1 + match r {
        OpResult::Unit
        | OpResult::MaybeBytes(None)
        | OpResult::MaybeValue(None)
        | OpResult::MaybeConn(None) => 0,
        OpResult::Value(v) | OpResult::MaybeValue(Some(v)) => varint_size(*v),
        OpResult::Bytes(b) | OpResult::MaybeBytes(Some(b)) => {
            varint_size(b.len() as u64) + b.len() as u64
        }
        OpResult::MaybeConn(Some(c)) => varint_size(u64::from(c.0)),
        OpResult::Fd(fd) => varint_size(u64::from(fd.0)),
        OpResult::Tid(t) => varint_size(u64::from(t.0)),
    }
}

/// The encoded size of a single entry, in bytes — the per-event payload the
/// recorder charges to the virtual clock.
///
/// Computed arithmetically (this runs once per recorded event on the
/// recorder's hot path); a test pins it to [`encode_entry`]'s actual byte
/// count for every op and result variant.
pub fn entry_size(e: &SketchEntry) -> u64 {
    let op = match &e.op {
        SketchOp::Start | SketchOp::Exit | SketchOp::Spawn => 1,
        SketchOp::Mem { loc, .. } => {
            let id = match loc {
                MemLoc::Var(v) => v.0,
                MemLoc::Buf(b) => b.0,
            };
            1 + 1 + varint_size(u64::from(id))
        }
        SketchOp::Sync { obj, .. } => 1 + 1 + varint_size(u64::from(*obj)),
        SketchOp::Join { target } => 1 + varint_size(u64::from(*target)),
        SketchOp::Sys { obj, .. } => 1 + 1 + varint_size(u64::from(*obj)) + result_size(&e.result),
        SketchOp::Func(f) => 1 + varint_size(u64::from(*f)),
        SketchOp::Bb(b) => 1 + varint_size(u64::from(*b)),
    };
    varint_size(u64::from(e.tid.0)) + op
}

#[cfg(test)]
mod tests {
    use super::*;
    use pres_tvm::ids::VarId;

    fn entry(tid: u32, op: SketchOp) -> SketchEntry {
        SketchEntry {
            tid: ThreadId(tid),
            op,
            result: OpResult::Unit,
        }
    }

    fn sample_sketch() -> Sketch {
        Sketch {
            mechanism: Mechanism::BbN(8),
            entries: vec![
                entry(0, SketchOp::Start),
                entry(
                    0,
                    SketchOp::Mem {
                        loc: MemLoc::Var(VarId(3)),
                        write: true,
                    },
                ),
                entry(
                    1,
                    SketchOp::Sync {
                        kind: SyncKind::Lock,
                        obj: 2,
                    },
                ),
                entry(0, SketchOp::Spawn),
                entry(0, SketchOp::Join { target: 1 }),
                SketchEntry {
                    tid: ThreadId(1),
                    op: SketchOp::Sys {
                        kind: SysKind::Recv,
                        obj: 4,
                    },
                    result: OpResult::MaybeBytes(Some(b"hello".to_vec())),
                },
                entry(1, SketchOp::Func(9)),
                entry(1, SketchOp::Bb(200)),
                entry(1, SketchOp::Exit),
            ],
            meta: SketchMeta {
                program: "httpd".into(),
                seed: 42,
                processors: 8,
                total_ops: 12345,
                failure_signature: "assert:log corrupted".into(),
            },
            checkpoint: None,
        }
    }

    #[test]
    fn varint_round_trip() {
        let values = [0u64, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64, u64::MAX];
        let mut w = ByteWriter::new();
        for v in values {
            w.varint(v);
        }
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        for v in values {
            assert_eq!(r.varint().unwrap(), v);
        }
        assert!(r.at_end());
    }

    #[test]
    fn small_varints_are_one_byte() {
        let mut w = ByteWriter::new();
        w.varint(100);
        assert_eq!(w.len(), 1);
        w.varint(200);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn sketch_round_trips() {
        let s = sample_sketch();
        let encoded = encode_sketch(&s);
        let decoded = decode_sketch(&encoded).unwrap();
        assert_eq!(s, decoded);
    }

    #[test]
    fn all_mechanisms_round_trip() {
        for m in Mechanism::all() {
            let mut s = sample_sketch();
            s.mechanism = m;
            let decoded = decode_sketch(&encode_sketch(&s)).unwrap();
            assert_eq!(decoded.mechanism, m);
        }
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let encoded = encode_sketch(&sample_sketch());
        for cut in [0, 3, 5, 10, encoded.len() - 1] {
            assert!(decode_sketch(&encoded[..cut]).is_err());
        }
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut encoded = encode_sketch(&sample_sketch());
        encoded[0] = b'X';
        let err = decode_sketch(&encoded).unwrap_err();
        assert!(err.message.contains("magic"));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut encoded = encode_sketch(&sample_sketch());
        encoded.push(0xff);
        let err = decode_sketch(&encoded).unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn sync_entries_are_compact() {
        let e = entry(
            3,
            SketchOp::Sync {
                kind: SyncKind::Unlock,
                obj: 7,
            },
        );
        // tid + tag + kind + obj = 4 bytes.
        assert_eq!(entry_size(&e), 4);
    }

    #[test]
    fn syscall_payload_dominates_its_entry_size() {
        let small = SketchEntry {
            tid: ThreadId(0),
            op: SketchOp::Sys {
                kind: SysKind::Clock,
                obj: 0,
            },
            result: OpResult::Value(1),
        };
        let big = SketchEntry {
            tid: ThreadId(0),
            op: SketchOp::Sys {
                kind: SysKind::Read,
                obj: 1,
            },
            result: OpResult::Bytes(vec![0; 1000]),
        };
        assert!(entry_size(&big) > entry_size(&small) + 990);
    }

    #[test]
    fn entry_size_matches_encoded_bytes_for_every_variant() {
        use pres_tvm::ids::{BufId, ConnId, FdId};
        // Boundary ids across varint length changes.
        let ids: Vec<u32> = vec![0, 1, 127, 128, 16383, 16384, u32::MAX];
        let results = vec![
            OpResult::Unit,
            OpResult::Value(0),
            OpResult::Value(u64::MAX),
            OpResult::Bytes(vec![]),
            OpResult::Bytes(vec![7; 300]),
            OpResult::MaybeBytes(None),
            OpResult::MaybeBytes(Some(vec![1, 2, 3])),
            OpResult::MaybeValue(None),
            OpResult::MaybeValue(Some(128)),
            OpResult::MaybeConn(None),
            OpResult::MaybeConn(Some(ConnId(u32::MAX))),
            OpResult::Fd(FdId(127)),
            OpResult::Tid(ThreadId(16384)),
        ];
        let mut entries: Vec<SketchEntry> = Vec::new();
        for &id in &ids {
            let mut ops = vec![
                SketchOp::Start,
                SketchOp::Exit,
                SketchOp::Spawn,
                SketchOp::Mem {
                    loc: MemLoc::Var(VarId(id)),
                    write: false,
                },
                SketchOp::Mem {
                    loc: MemLoc::Buf(BufId(id)),
                    write: true,
                },
                SketchOp::Join { target: id },
                SketchOp::Func(id),
                SketchOp::Bb(id),
            ];
            // Every sync and sys kind the codec knows.
            ops.extend((0..16).map(|c| SketchOp::Sync {
                kind: sync_kind_from(c).unwrap(),
                obj: id,
            }));
            for op in ops {
                entries.push(SketchEntry {
                    tid: ThreadId(id),
                    op,
                    result: OpResult::Unit,
                });
            }
            // Sys entries carry results: cross every kind with every result.
            for c in 0..11 {
                for res in &results {
                    entries.push(SketchEntry {
                        tid: ThreadId(id),
                        op: SketchOp::Sys {
                            kind: sys_kind_from(c).unwrap(),
                            obj: id,
                        },
                        result: res.clone(),
                    });
                }
            }
        }
        for e in &entries {
            let mut w = ByteWriter::new();
            let encoded = encode_entry(&mut w, e);
            assert_eq!(
                entry_size(e),
                encoded as u64,
                "arithmetic size diverges from encoder for {e:?}"
            );
        }
    }

    #[test]
    fn v1_container_still_decodes() {
        let s = sample_sketch();
        let encoded = encode_sketch_v1(&s);
        assert_eq!(container_version(&encoded).unwrap(), 1);
        assert_eq!(decode_sketch(&encoded).unwrap(), s);
    }

    #[test]
    fn default_container_is_v2() {
        let encoded = encode_sketch(&sample_sketch());
        assert_eq!(container_version(&encoded).unwrap(), 2);
        assert_eq!(encoded, encode_sketch_v2(&sample_sketch()));
    }

    #[test]
    fn empty_sketch_round_trips_in_both_versions() {
        let s = Sketch {
            mechanism: Mechanism::Sync,
            entries: vec![],
            meta: SketchMeta::default(),
            checkpoint: None,
        };
        assert_eq!(decode_sketch(&encode_sketch_v1(&s)).unwrap(), s);
        assert_eq!(decode_sketch(&encode_sketch_v2(&s)).unwrap(), s);
    }

    #[test]
    fn v2_shrinks_a_marker_dense_sketch() {
        // The shape the recorder actually produces: long same-thread runs
        // of markers with locally clustered ids, punctuated by sync.
        let mut entries = Vec::new();
        for tid in 0..4u32 {
            entries.push(entry(tid, SketchOp::Start));
            for b in 0..200u32 {
                entries.push(entry(tid, SketchOp::Bb(1000 + b)));
                if b % 50 == 0 {
                    entries.push(entry(
                        tid,
                        SketchOp::Sync {
                            kind: SyncKind::Lock,
                            obj: 2,
                        },
                    ));
                    entries.push(entry(
                        tid,
                        SketchOp::Sync {
                            kind: SyncKind::Unlock,
                            obj: 2,
                        },
                    ));
                }
            }
            entries.push(entry(tid, SketchOp::Exit));
        }
        let s = Sketch {
            mechanism: Mechanism::Bb,
            entries,
            meta: SketchMeta::default(),
            checkpoint: None,
        };
        let v1 = encode_sketch_v1(&s);
        let v2 = encode_sketch_v2(&s);
        assert_eq!(decode_sketch(&v2).unwrap(), s);
        assert!(
            (v2.len() as f64) < 0.75 * v1.len() as f64,
            "v2 {} must be at least 25% smaller than v1 {}",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn v2_round_trips_arbitrary_interleavings() {
        // A worst case for the interleave stream: strict alternation, ids
        // jumping around (deltas exercise negative zigzag).
        let mut entries = Vec::new();
        for i in 0..60u32 {
            let tid = i % 3;
            entries.push(entry(tid, SketchOp::Bb(if i % 2 == 0 { 7 } else { 9000 })));
            entries.push(entry(
                tid,
                SketchOp::Mem {
                    loc: MemLoc::Var(VarId(u32::MAX - i)),
                    write: i % 2 == 0,
                },
            ));
        }
        let s = Sketch {
            mechanism: Mechanism::Rw,
            entries,
            meta: SketchMeta::default(),
            checkpoint: None,
        };
        assert_eq!(decode_sketch(&encode_sketch_v2(&s)).unwrap(), s);
    }

    #[test]
    fn v2_truncations_and_corruptions_are_errors_not_panics() {
        let encoded = encode_sketch_v2(&sample_sketch());
        for cut in 0..encoded.len() {
            assert!(decode_sketch(&encoded[..cut]).is_err());
        }
        let mut bad_version = encoded.clone();
        bad_version[4] = 9;
        assert!(decode_sketch(&bad_version)
            .unwrap_err()
            .message
            .contains("version"));
    }

    /// A checkpoint-bearing sample: genesis boundary, so no VM snapshot
    /// is needed (snapshots with nonzero boundaries are exercised by the
    /// recorder's ring-flush round-trip tests, which capture real ones).
    fn checkpointed_sketch() -> Sketch {
        let mut s = sample_sketch();
        s.checkpoint = Some(Box::new(SketchCheckpoint {
            boundary: 0,
            production_seed: 42,
            dropped_epochs: 0,
            dropped_entries: 0,
            bbn_counters: vec![],
            epochs: vec![
                EpochInfo {
                    index: 0,
                    start_picks: 0,
                    entries: 5,
                },
                EpochInfo {
                    index: 1,
                    start_picks: 40,
                    entries: 4,
                },
            ],
            snapshot: vec![],
        }));
        s
    }

    #[test]
    fn checkpoint_bearing_sketch_selects_v3_and_round_trips() {
        let s = checkpointed_sketch();
        let encoded = encode_sketch(&s);
        assert_eq!(container_version(&encoded).unwrap(), 3);
        assert_eq!(decode_sketch(&encoded).unwrap(), s);
        // Checkpoint-free sketches still emit v2.
        assert_eq!(container_version(&encode_sketch(&sample_sketch())).unwrap(), 2);
    }

    #[test]
    fn v3_truncations_are_errors_not_panics() {
        let encoded = encode_sketch(&checkpointed_sketch());
        for cut in 0..encoded.len() {
            assert!(decode_sketch(&encoded[..cut]).is_err());
        }
    }

    #[test]
    fn nonzero_boundary_demands_a_valid_snapshot() {
        let mut s = checkpointed_sketch();
        {
            let cp = s.checkpoint.as_deref_mut().unwrap();
            cp.boundary = 9;
            cp.snapshot = b"not a vm snapshot".to_vec();
        }
        let encoded = encode_sketch_v3(&s);
        let err = decode_sketch(&encoded).unwrap_err();
        assert!(err.message.contains("snapshot"), "{}", err.message);
    }

    #[test]
    fn genesis_checkpoint_with_a_snapshot_is_rejected() {
        let mut s = checkpointed_sketch();
        s.checkpoint.as_deref_mut().unwrap().snapshot = vec![1, 2, 3];
        let encoded = encode_sketch_v3(&s);
        let err = decode_sketch(&encoded).unwrap_err();
        assert!(err.message.contains("genesis"), "{}", err.message);
    }

    #[test]
    fn flipping_a_v2_container_to_v3_yields_no_phantom_checkpoint() {
        // Version-byte corruption must never reinterpret a v2 body as a
        // believable checkpoint: the first body varint (a nonzero entry
        // count) lands on `boundary`, and a nonzero boundary demands an
        // embedded snapshot that decodes — garbage cannot.
        let mut encoded = encode_sketch_v2(&sample_sketch());
        encoded[4] = 3;
        assert!(decode_sketch(&encoded).is_err());
    }

    #[test]
    fn checkpoint_segment_bytes_is_v3_only() {
        let v3 = encode_sketch(&checkpointed_sketch());
        let seg = checkpoint_segment_bytes(&v3).unwrap().expect("v3 has a segment");
        assert!(seg > 0 && seg < v3.len() as u64);
        assert_eq!(checkpoint_segment_bytes(&encode_sketch_v2(&sample_sketch())).unwrap(), None);
        assert_eq!(checkpoint_segment_bytes(&encode_sketch_v1(&sample_sketch())).unwrap(), None);
    }

    #[test]
    fn v2_layout_skips_the_checkpoint_segment() {
        let s = checkpointed_sketch();
        let layout = v2_layout(&encode_sketch(&s))
            .expect("valid container")
            .expect("v3 has a columnar layout");
        assert_eq!(layout.entries, s.entries.len() as u64);
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -12345] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn all_result_variants_round_trip() {
        use pres_tvm::ids::{ConnId, FdId};
        let results = vec![
            OpResult::Unit,
            OpResult::Value(u64::MAX),
            OpResult::Bytes(vec![1, 2, 3]),
            OpResult::MaybeBytes(None),
            OpResult::MaybeBytes(Some(vec![])),
            OpResult::MaybeValue(None),
            OpResult::MaybeValue(Some(0)),
            OpResult::MaybeConn(None),
            OpResult::MaybeConn(Some(ConnId(9))),
            OpResult::Fd(FdId(2)),
            OpResult::Tid(ThreadId(5)),
        ];
        for res in results {
            let mut w = ByteWriter::new();
            encode_result(&mut w, &res);
            let buf = w.finish();
            let mut r = ByteReader::new(&buf);
            assert_eq!(decode_result(&mut r).unwrap(), res);
            assert!(r.at_end());
        }
    }

    #[test]
    fn v2_layout_reports_the_shard_directory() {
        let sketch = sample_sketch();
        let encoded = encode_sketch_v2(&sketch);
        let layout = v2_layout(&encoded)
            .expect("valid container")
            .expect("v2 has a layout");
        assert_eq!(layout.entries, sketch.entries.len() as u64);
        // Shards are ascending by tid and cover every entry exactly once.
        let tids: Vec<u32> = layout.threads.iter().map(|s| s.tid).collect();
        assert_eq!(tids, vec![0, 1]);
        let per_thread = |tid: u32| sketch.entries.iter().filter(|e| e.tid.0 == tid).count() as u64;
        for shard in &layout.threads {
            assert_eq!(shard.entries, per_thread(shard.tid), "tid {}", shard.tid);
            assert!(shard.column_bytes > 0, "tid {}", shard.tid);
        }
        let shard_entries: u64 = layout.threads.iter().map(|s| s.entries).sum();
        assert_eq!(shard_entries, layout.entries);
        // Interleave + columns never exceed the whole container.
        let body: u64 =
            layout.interleave_bytes + layout.threads.iter().map(|s| s.column_bytes).sum::<u64>();
        assert!(body < encoded.len() as u64);
        assert!(["plain", "rle", "nibble"].contains(&layout.interleave_encoding));
    }

    #[test]
    fn v2_layout_is_absent_for_v1_containers() {
        let sketch = sample_sketch();
        let encoded = encode_sketch_v1(&sketch);
        assert_eq!(v2_layout(&encoded).expect("valid container"), None);
        assert!(v2_layout(b"garbage").is_err());
    }
}
