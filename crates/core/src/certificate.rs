//! Reproduction certificates: "reproduce once, reproduce every time".
//!
//! The first successful replay attempt yields the complete scheduling
//! decision sequence of a failing execution. Packaged with the expected
//! failure signature, that sequence is a *certificate*: replaying it through
//! a scripted scheduler reproduces the identical execution — and therefore
//! the identical failure — deterministically, every time. This is the
//! paper's closing property: PRES pays the search cost once.

use crate::codec::{ByteReader, ByteWriter, DecodeError};
use pres_tvm::error::RunStatus;
use pres_tvm::ids::ThreadId;
use pres_tvm::sched::ScriptedScheduler;
use pres_tvm::trace::{NullObserver, TraceMode};
use pres_tvm::vm::{self, RunOutcome, VmConfig};
use std::fmt;

use crate::oracle::{FailureOracle, StatusOracle};
use crate::program::Program;

/// A deterministic reproduction certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The program this certificate replays.
    pub program: String,
    /// The exact scheduling decision sequence of the failing execution.
    pub schedule: Vec<ThreadId>,
    /// The failure signature the replay must produce.
    pub expected_signature: String,
    /// Processor count used when the certificate was minted (timing only).
    pub processors: u32,
}

/// Certificate verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateError {
    /// The replay ended without the expected failure.
    WrongOutcome {
        /// What the replay produced instead.
        got: String,
        /// What the certificate promised.
        expected: String,
    },
    /// The certificate names a different program.
    ProgramMismatch {
        /// Name in the certificate.
        expected: String,
        /// Name of the supplied program.
        got: String,
    },
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::WrongOutcome { got, expected } => {
                write!(f, "certificate replay produced '{got}', expected '{expected}'")
            }
            CertificateError::ProgramMismatch { expected, got } => {
                write!(f, "certificate is for program '{expected}', got '{got}'")
            }
        }
    }
}

impl std::error::Error for CertificateError {}

impl Certificate {
    /// Replays the certificate against `program`, verifying that the
    /// expected failure manifests. Returns the full (traced) outcome so the
    /// developer can inspect the failing execution.
    pub fn replay(&self, program: &dyn Program) -> Result<RunOutcome, CertificateError> {
        self.replay_with(program, &StatusOracle::new(self.expected_signature.clone()))
    }

    /// As [`Certificate::replay`], with an explicit failure oracle — needed
    /// for certificates minted by
    /// [`crate::explore::reproduce_with_oracle`] over output-mismatch
    /// oracles, where the "failure" is a wrong result, not a crash.
    pub fn replay_with(
        &self,
        program: &dyn Program,
        oracle: &dyn FailureOracle,
    ) -> Result<RunOutcome, CertificateError> {
        if program.name() != self.program {
            return Err(CertificateError::ProgramMismatch {
                expected: self.program.clone(),
                got: program.name(),
            });
        }
        let mut sched = ScriptedScheduler::new(self.schedule.clone());
        let body = program.root();
        let out = vm::run(
            VmConfig {
                processors: self.processors,
                trace_mode: TraceMode::Full,
                world: program.world(),
                ..VmConfig::default()
            },
            program.resources(),
            &mut sched,
            &mut NullObserver,
            move |ctx| body(ctx),
        );
        match oracle.judge(&out) {
            Some(got) if got == self.expected_signature => Ok(out),
            Some(got) => Err(CertificateError::WrongOutcome {
                got,
                expected: self.expected_signature.clone(),
            }),
            None => {
                // Render the most precise "what happened instead".
                let got = match &out.status {
                    RunStatus::Failed(f) => f.signature(),
                    other => other.to_string(),
                };
                Err(CertificateError::WrongOutcome {
                    got,
                    expected: self.expected_signature.clone(),
                })
            }
        }
    }

    /// Serializes the certificate to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.string(&self.program);
        w.string(&self.expected_signature);
        w.varint(u64::from(self.processors));
        w.varint(self.schedule.len() as u64);
        // Delta-friendly: thread ids are tiny; plain varints are compact.
        for t in &self.schedule {
            w.varint(u64::from(t.0));
        }
        w.finish()
    }

    /// Deserializes a certificate.
    pub fn decode(data: &[u8]) -> Result<Certificate, DecodeError> {
        let mut r = ByteReader::new(data);
        let program = r.string()?;
        let expected_signature = r.string()?;
        let processors = r.varint()? as u32;
        let n = r.varint()? as usize;
        let mut schedule = Vec::with_capacity(n.min(1 << 22));
        for _ in 0..n {
            schedule.push(ThreadId(r.varint()? as u32));
        }
        Ok(Certificate {
            program,
            schedule,
            expected_signature,
            processors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ClosureProgram;
    use pres_tvm::prelude::*;

    fn racy_program() -> impl Program {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        ClosureProgram::new("racy", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    let v = ctx.read(x);
                    ctx.compute(20);
                    ctx.write(x, v + 1);
                });
                let v = ctx.read(x);
                ctx.compute(20);
                ctx.write(x, v + 1);
                ctx.join(t);
                let total = ctx.read(x);
                ctx.check(total == 2, "lost update");
            })
        })
    }

    fn failing_schedule(prog: &dyn Program) -> (Vec<ThreadId>, String) {
        for seed in 0..500 {
            let body = prog.root();
            let out = pres_tvm::vm::run(
                VmConfig::default(),
                prog.resources(),
                &mut RandomScheduler::new(seed),
                &mut NullObserver,
                move |ctx| body(ctx),
            );
            if let RunStatus::Failed(f) = &out.status {
                return (out.schedule, f.signature());
            }
        }
        panic!("no failing seed found");
    }

    #[test]
    fn certificate_reproduces_every_time() {
        let prog = racy_program();
        let (schedule, signature) = failing_schedule(&prog);
        let cert = Certificate {
            program: prog.name(),
            schedule,
            expected_signature: signature,
            processors: 4,
        };
        for _ in 0..20 {
            let out = cert.replay(&prog).expect("certificate must reproduce");
            assert!(out.status.is_failed());
        }
    }

    #[test]
    fn certificate_rejects_wrong_program() {
        let prog = racy_program();
        let (schedule, signature) = failing_schedule(&prog);
        let cert = Certificate {
            program: "something-else".into(),
            schedule,
            expected_signature: signature,
            processors: 4,
        };
        match cert.replay(&prog) {
            Err(CertificateError::ProgramMismatch { .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn certificate_detects_non_reproduction() {
        let prog = racy_program();
        let (schedule, _) = failing_schedule(&prog);
        let cert = Certificate {
            program: prog.name(),
            schedule,
            expected_signature: "assert:some other bug".into(),
            processors: 4,
        };
        match cert.replay(&prog) {
            Err(CertificateError::WrongOutcome { got, .. }) => {
                assert_eq!(got, "assert:lost update");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn certificate_encoding_round_trips() {
        let cert = Certificate {
            program: "httpd".into(),
            schedule: vec![ThreadId(0), ThreadId(1), ThreadId(0), ThreadId(2)],
            expected_signature: "deadlock:1,3".into(),
            processors: 8,
        };
        let decoded = Certificate::decode(&cert.encode()).unwrap();
        assert_eq!(cert, decoded);
    }

    #[test]
    fn truncated_certificate_fails_to_decode() {
        let cert = Certificate {
            program: "p".into(),
            schedule: vec![ThreadId(0); 10],
            expected_signature: "s".into(),
            processors: 1,
        };
        let bytes = cert.encode();
        assert!(Certificate::decode(&bytes[..bytes.len() - 3]).is_err());
    }
}
