//! The exploration engine: coordinated replay attempts until reproduction.
//!
//! PRES relaxes "reproduce on the first attempt" to "reproduce within a few
//! attempts". The explorer drives that loop:
//!
//! 1. run a sketch-constrained replay attempt (full trace on);
//! 2. if the target failure manifested — done; mint a certificate from the
//!    attempt's scheduling decisions;
//! 3. otherwise generate feedback: extract flip candidates from the
//!    attempt's trace ([`crate::feedback`]) and append refined constraint
//!    sets to a breadth-first frontier — single flips are all tried before
//!    any pair of flips, because one reordering near the failure point is
//!    usually sufficient;
//! 4. take the next constraint set and go to 1.
//!
//! When the frontier drains without success the explorer starts a new
//! *round* with a fresh exploration seed — coarse sketches sometimes leave
//! so much freedom that a different base interleaving is needed before
//! flipping becomes productive.
//!
//! The **random** strategy (no feedback, fresh seed each attempt) is the
//! paper's ablation baseline: "PRES's feedback generation from unsuccessful
//! replays is critical in bug reproduction".

use crate::certificate::Certificate;
use crate::feedback;
use crate::oracle::{FailureOracle, StatusOracle};
use crate::program::Program;
use crate::replay::{OrderConstraint, PiReplayScheduler};
use crate::sketch::Sketch;
use pres_tvm::error::RunStatus;
use pres_tvm::trace::{NullObserver, TraceMode};
use pres_tvm::vm::{self, VmConfig};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// How the explorer chooses the next attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// PRES: feedback-guided systematic flipping.
    Feedback,
    /// Ablation baseline: independent random attempts.
    Random,
}

impl Strategy {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Feedback => "feedback",
            Strategy::Random => "random",
        }
    }
}

/// Exploration parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExploreConfig {
    /// Attempt strategy.
    pub strategy: Strategy,
    /// Attempt budget (the paper caps tables at 1000).
    pub max_attempts: u32,
    /// Base exploration seed.
    pub base_seed: u64,
    /// Max flip candidates expanded per failed attempt (frontier fanout).
    pub fanout: usize,
    /// Every this many attempts, the feedback strategy restarts with a
    /// fresh base interleaving (fresh seed, empty constraints) even if the
    /// frontier is non-empty — insurance against an unlucky base schedule
    /// trapping the search in a barren subtree. `0` disables restarts.
    pub restart_period: u32,
    /// Candidate ranking policy (ablation knob; see experiment E9).
    pub ranking: feedback::Ranking,
    /// Frontier discipline (ablation knob): breadth-first tries every
    /// single flip before any composed set; depth-first commits to a
    /// subtree.
    pub search: SearchOrder,
}

/// Frontier discipline for the feedback strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchOrder {
    /// Breadth-first (default).
    Bfs,
    /// Depth-first (the ablation alternative).
    Dfs,
}

impl SearchOrder {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SearchOrder::Bfs => "bfs",
            SearchOrder::Dfs => "dfs",
        }
    }
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            strategy: Strategy::Feedback,
            max_attempts: 1000,
            base_seed: 0x5eed,
            fanout: 12,
            restart_period: 10,
            ranking: feedback::Ranking::LocksetThenRecency,
            search: SearchOrder::Bfs,
        }
    }
}

/// One attempt's summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttemptRecord {
    /// 1-based attempt number.
    pub index: u32,
    /// Whether the attempt ended in the target failure.
    pub reproduced: bool,
    /// Whether the attempt aborted on divergence/stall.
    pub diverged: bool,
    /// Final status, rendered.
    pub status: String,
    /// Number of flip constraints active.
    pub constraints: usize,
    /// Exploration seed used.
    pub seed: u64,
}

/// The result of a reproduction effort.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Reproduction {
    /// Whether the bug was reproduced within budget.
    pub reproduced: bool,
    /// Attempts consumed (= index of the successful attempt if reproduced).
    pub attempts: u32,
    /// The minted certificate, if reproduced.
    pub certificate: Option<Certificate>,
    /// Per-attempt history.
    pub history: Vec<AttemptRecord>,
}

#[derive(Debug, Clone)]
struct Plan {
    seed: u64,
    constraints: Vec<OrderConstraint>,
}

fn plan_signature(constraints: &[OrderConstraint], seed: u64) -> String {
    let mut cs: Vec<String> = constraints.iter().map(|c| c.to_string()).collect();
    cs.sort();
    format!("{seed}|{}", cs.join(";"))
}

/// Runs the reproduction loop for a recorded failure.
///
/// `target_signature` is the failure signature the production run exhibited
/// (from [`crate::sketch::SketchMeta::failure_signature`]).
pub fn reproduce(
    program: &dyn Program,
    sketch: &Sketch,
    target_signature: &str,
    vm_config: &VmConfig,
    explore: &ExploreConfig,
) -> Reproduction {
    reproduce_with_oracle(
        program,
        sketch,
        &StatusOracle::new(target_signature),
        vm_config,
        explore,
    )
}

/// As [`reproduce`], but the bug's manifestation is decided by an arbitrary
/// [`FailureOracle`] — the hook through which silent-corruption bugs
/// (wrong output, no crash) are reproduced. The minted certificate's
/// expected signature is whatever the oracle reported; verify such
/// certificates with [`Certificate::replay_with`].
pub fn reproduce_with_oracle(
    program: &dyn Program,
    sketch: &Sketch,
    oracle: &dyn FailureOracle,
    vm_config: &VmConfig,
    explore: &ExploreConfig,
) -> Reproduction {
    let mut history = Vec::new();
    let mut frontier: VecDeque<Plan> = VecDeque::from([Plan {
        seed: explore.base_seed,
        constraints: Vec::new(),
    }]);
    let mut tried: BTreeSet<String> = BTreeSet::new();
    tried.insert(plan_signature(&[], explore.base_seed));
    let mut round: u64 = 0;

    for attempt in 1..=explore.max_attempts {
        let plan = match explore.strategy {
            Strategy::Random => Plan {
                seed: explore
                    .base_seed
                    .wrapping_add(u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                constraints: Vec::new(),
            },
            Strategy::Feedback => {
                let restart = explore.restart_period > 0
                    && attempt > 1
                    && (attempt - 1) % explore.restart_period == 0;
                let next = if restart {
                    None
                } else {
                    match explore.search {
                        SearchOrder::Bfs => frontier.pop_front(),
                        SearchOrder::Dfs => frontier.pop_back(),
                    }
                };
                match next {
                    Some(p) => p,
                    None => {
                        // Frontier drained or periodic restart: fresh base
                        // interleaving.
                        round += 1;
                        let p = Plan {
                            seed: explore.base_seed.wrapping_add(round),
                            constraints: Vec::new(),
                        };
                        tried.insert(plan_signature(&p.constraints, p.seed));
                        p
                    }
                }
            }
        };

        // Run the attempt with full tracing.
        let mut sched = PiReplayScheduler::new(sketch, plan.constraints.clone(), plan.seed);
        let body = program.root();
        let mut cfg = vm_config.clone();
        cfg.trace_mode = TraceMode::Full;
        cfg.world = program.world();
        let out = vm::run(
            cfg,
            program.resources(),
            &mut sched,
            &mut NullObserver,
            move |ctx| body(ctx),
        );

        let verdict = oracle.judge(&out);
        let reproduced = verdict.is_some();
        let diverged = matches!(&out.status, RunStatus::Aborted(_));
        history.push(AttemptRecord {
            index: attempt,
            reproduced,
            diverged,
            status: out.status.to_string(),
            constraints: plan.constraints.len(),
            seed: plan.seed,
        });

        if let Some(signature) = verdict {
            let certificate = Certificate {
                program: program.name(),
                schedule: out.schedule,
                expected_signature: signature,
                processors: vm_config.processors,
            };
            return Reproduction {
                reproduced: true,
                attempts: attempt,
                certificate: Some(certificate),
                history,
            };
        }

        if explore.strategy == Strategy::Feedback {
            // Feedback: refine this plan with flip candidates from the
            // attempt's trace, most promising popped first.
            let cands = feedback::candidates_ranked(&out.trace, explore.ranking);
            let cands: Vec<_> = cands.into_iter().take(explore.fanout).collect();
            // DFS pops from the back, so highest priority must land last.
            let ordered: Vec<_> = match explore.search {
                SearchOrder::Bfs => cands,
                SearchOrder::Dfs => cands.into_iter().rev().collect(),
            };
            for cand in ordered {
                let mut constraints = plan.constraints.clone();
                if constraints.contains(&cand.constraint) {
                    continue;
                }
                constraints.push(cand.constraint);
                let sig = plan_signature(&constraints, plan.seed);
                if tried.insert(sig) {
                    // Breadth-first: every single flip is tried before any
                    // composed set; `cands` arrives best-first.
                    frontier.push_back(Plan {
                        seed: plan.seed,
                        constraints,
                    });
                }
            }
        }
    }

    Reproduction {
        reproduced: false,
        attempts: explore.max_attempts,
        certificate: None,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ClosureProgram;
    use crate::recorder::record_until_failure;
    use crate::sketch::Mechanism;
    use pres_tvm::prelude::*;

    /// The canonical atomicity violation: unprotected read-compute-write
    /// with plenty of surrounding work so the window rarely splits.
    fn atomicity_program() -> impl Program {
        let mut spec = ResourceSpec::new();
        let counter = spec.var("counter", 0);
        let m = spec.lock("m");
        let noise = spec.var("noise", 0);
        ClosureProgram::new("atomicity", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                let kids: Vec<ThreadId> = (0..2)
                    .map(|i| {
                        ctx.spawn(&format!("w{i}"), move |ctx| {
                            for k in 0..6u64 {
                                // Plenty of properly-locked work.
                                ctx.with_lock(m, |ctx| {
                                    let v = ctx.read(noise);
                                    ctx.write(noise, v + k);
                                });
                                ctx.compute(40);
                            }
                            // The buggy window: unprotected RMW.
                            let v = ctx.read(counter);
                            ctx.compute(8);
                            ctx.write(counter, v + 1);
                        })
                    })
                    .collect();
                for k in kids {
                    ctx.join(k);
                }
                let total = ctx.read(counter);
                ctx.check(total == 2, "lost update");
            })
        })
    }

    #[test]
    fn rw_sketch_reproduces_on_first_attempt() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Rw, &config, 0..2000)
            .expect("failing seed exists");
        let rep = reproduce(
            &prog,
            &run.sketch,
            &run.sketch.meta.failure_signature,
            &config,
            &ExploreConfig::default(),
        );
        assert!(rep.reproduced);
        assert_eq!(rep.attempts, 1, "{:#?}", rep.history);
    }

    #[test]
    fn sync_sketch_with_feedback_reproduces_quickly() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000)
            .expect("failing seed exists");
        let rep = reproduce(
            &prog,
            &run.sketch,
            &run.sketch.meta.failure_signature,
            &config,
            &ExploreConfig::default(),
        );
        assert!(rep.reproduced, "{:#?}", rep.history);
        assert!(
            rep.attempts <= 10,
            "feedback should reproduce within 10 attempts, took {}",
            rep.attempts
        );
        // The certificate reproduces deterministically.
        let cert = rep.certificate.expect("certificate minted");
        for _ in 0..5 {
            cert.replay(&prog).expect("certificate replays");
        }
    }

    #[test]
    fn feedback_beats_random_on_attempts() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000)
            .expect("failing seed exists");
        let target = run.sketch.meta.failure_signature.clone();
        let fb = reproduce(
            &prog,
            &run.sketch,
            &target,
            &config,
            &ExploreConfig {
                strategy: Strategy::Feedback,
                max_attempts: 200,
                ..ExploreConfig::default()
            },
        );
        let rnd = reproduce(
            &prog,
            &run.sketch,
            &target,
            &config,
            &ExploreConfig {
                strategy: Strategy::Random,
                max_attempts: 200,
                ..ExploreConfig::default()
            },
        );
        assert!(fb.reproduced);
        let rnd_attempts = if rnd.reproduced { rnd.attempts } else { 201 };
        assert!(
            fb.attempts <= rnd_attempts,
            "feedback {} vs random {rnd_attempts}",
            fb.attempts
        );
    }

    #[test]
    fn unreproducible_target_exhausts_budget() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        let rep = reproduce(
            &prog,
            &run.sketch,
            "assert:some bug that does not exist",
            &config,
            &ExploreConfig {
                max_attempts: 5,
                ..ExploreConfig::default()
            },
        );
        assert!(!rep.reproduced);
        assert_eq!(rep.attempts, 5);
        assert!(rep.certificate.is_none());
        assert_eq!(rep.history.len(), 5);
    }

    #[test]
    fn dfs_search_also_reproduces() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        let rep = reproduce(
            &prog,
            &run.sketch,
            &run.sketch.meta.failure_signature,
            &config,
            &ExploreConfig {
                search: SearchOrder::Dfs,
                max_attempts: 200,
                ..ExploreConfig::default()
            },
        );
        assert!(rep.reproduced, "{:#?}", rep.history);
    }

    #[test]
    fn restarts_can_be_disabled() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        let rep = reproduce(
            &prog,
            &run.sketch,
            &run.sketch.meta.failure_signature,
            &config,
            &ExploreConfig {
                restart_period: 0,
                max_attempts: 200,
                ..ExploreConfig::default()
            },
        );
        assert!(rep.reproduced);
        // Without restarts, every attempt uses the base seed.
        assert!(rep.history.iter().all(|h| h.seed == ExploreConfig::default().base_seed));
    }

    #[test]
    fn history_indices_are_sequential() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        let rep = reproduce(
            &prog,
            &run.sketch,
            "assert:never",
            &config,
            &ExploreConfig {
                max_attempts: 4,
                ..ExploreConfig::default()
            },
        );
        let idx: Vec<u32> = rep.history.iter().map(|h| h.index).collect();
        assert_eq!(idx, vec![1, 2, 3, 4]);
    }
}
