//! The exploration engine: coordinated replay attempts until reproduction.
//!
//! PRES relaxes "reproduce on the first attempt" to "reproduce within a few
//! attempts". The explorer drives that loop:
//!
//! 1. run a sketch-constrained replay attempt (streaming the events through
//!    a [`feedback::StreamingExtractor`] rather than buffering a trace —
//!    see [`FeedbackMode`]);
//! 2. if the target failure manifested — done; mint a certificate from the
//!    attempt's scheduling decisions;
//! 3. otherwise generate feedback: rank the flip candidates the extractor
//!    accumulated ([`crate::feedback`]) and append refined constraint
//!    sets to a breadth-first frontier — single flips are all tried before
//!    any pair of flips, because one reordering near the failure point is
//!    usually sufficient;
//! 4. take the next constraint set and go to 1.
//!
//! The sketch itself is consulted through a [`SketchIndex`] built **once**
//! per reproduction and shared (via `Arc`) by every attempt and worker, so
//! per-attempt scheduler setup allocates only the cursor state.
//!
//! When the frontier drains without success the explorer starts a new
//! *round* with a fresh exploration seed — coarse sketches sometimes leave
//! so much freedom that a different base interleaving is needed before
//! flipping becomes productive.
//!
//! The **random** strategy (no feedback, fresh seed each attempt) is the
//! paper's ablation baseline: "PRES's feedback generation from unsuccessful
//! replays is critical in bug reproduction".
//!
//! # Parallel exploration
//!
//! Attempts are independent executions of the deterministic VM, so the loop
//! parallelizes naturally: [`ExploreConfig::workers`] threads drain one
//! shared frontier. The shared state (frontier + the set of plan signatures
//! ever tried) lives behind a mutex; a worker that finds the frontier empty
//! while other attempts are still in flight waits on a condvar for their
//! feedback rather than burning budget on restart rounds. Every attempt is
//! numbered by a global atomic counter, and the first success publishes its
//! attempt index as a cancellation flag: workers stop claiming new attempts
//! numbered above it. When several attempts succeed concurrently the
//! **lowest-numbered** success supplies the certificate and the reported
//! attempt count, so the minted artifact does not depend on thread timing.

use crate::certificate::Certificate;
use crate::feedback;
use crate::oracle::{FailureOracle, StatusOracle};
use crate::program::Program;
use crate::recorder::verify_checkpoint;
use crate::replay::{FastForwardScheduler, OrderConstraint};
use crate::sketch::{Sketch, SketchIndex};
use pres_tvm::error::RunStatus;
use pres_tvm::pool::VthreadPool;
use pres_tvm::sync::{Condvar, Mutex};
use pres_tvm::trace::{Event, NullObserver, Observer, ObserverCharge, Trace, TraceMode};
use pres_tvm::vm::{self, RunOutcome, VmConfig};
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How the explorer chooses the next attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// PRES: feedback-guided systematic flipping.
    Feedback,
    /// Ablation baseline: independent random attempts.
    Random,
}

impl Strategy {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Feedback => "feedback",
            Strategy::Random => "random",
        }
    }
}

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Attempt strategy.
    pub strategy: Strategy,
    /// Attempt budget (the paper caps tables at 1000).
    pub max_attempts: u32,
    /// Base exploration seed.
    pub base_seed: u64,
    /// Max flip candidates expanded per failed attempt (frontier fanout).
    pub fanout: usize,
    /// Every this many attempts, the feedback strategy restarts with a
    /// fresh base interleaving (fresh seed, empty constraints) even if the
    /// frontier is non-empty — insurance against an unlucky base schedule
    /// trapping the search in a barren subtree. `0` disables restarts.
    pub restart_period: u32,
    /// Candidate ranking policy (ablation knob; see experiment E9).
    pub ranking: feedback::Ranking,
    /// Frontier discipline (ablation knob): breadth-first tries every
    /// single flip before any composed set; depth-first commits to a
    /// subtree.
    pub search: SearchOrder,
    /// How failed attempts feed candidate extraction: streaming (no trace
    /// buffering, the default) or buffered post-hoc analysis.
    pub feedback_mode: FeedbackMode,
    /// Worker threads draining the shared frontier concurrently. `1` (the
    /// default) runs the classic serial loop; higher values race attempts
    /// on OS threads and the lowest-numbered success wins.
    pub workers: usize,
    /// Which execution engine hosts attempt vthreads (pooled by default).
    pub executor: ExecutorKind,
    /// Sizing hint for each worker's [`VthreadPool`] (see
    /// [`ExploreConfig::validate`]; the pool grows on demand regardless).
    pub pool_width: usize,
    /// Cooperative stop token: checked between attempts, so a reproduction
    /// can be cut short by a wall-clock budget (`pres reproduce
    /// --timeout-secs`, the daemon's per-job timeout) or an external
    /// cancellation. `None` (the default) never stops early.
    pub stop: Option<StopToken>,
}

/// A cooperative cancellation handle for a reproduction in flight.
///
/// The explorer polls [`StopToken::is_stopped`] before claiming each
/// attempt; it never interrupts an attempt mid-run, so stopping is always
/// clean — the [`Reproduction`] reports the attempts actually spent and
/// sets [`Reproduction::stopped`]. A token trips either explicitly
/// ([`StopToken::stop`]) or by passing its deadline, which makes a
/// wall-clock budget a one-liner: `StopToken::after(timeout)`.
#[derive(Debug, Clone, Default)]
pub struct StopToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl StopToken {
    /// A token with no deadline; trips only via [`StopToken::stop`].
    pub fn new() -> Self {
        StopToken::default()
    }

    /// A token that trips once `budget` wall-clock time has elapsed (or
    /// earlier via [`StopToken::stop`]).
    pub fn after(budget: Duration) -> Self {
        StopToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + budget),
        }
    }

    /// A token that trips at `deadline`.
    pub fn at(deadline: Instant) -> Self {
        StopToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Trips the token: every explorer sharing it stops claiming attempts.
    pub fn stop(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether the token has tripped (explicitly or by deadline).
    pub fn is_stopped(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Which execution engine hosts the vthreads of replay attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// A reusable [`VthreadPool`] per exploration worker, checked out
    /// attempt after attempt: steady-state attempts perform **zero** OS
    /// thread spawns. The default.
    Pooled,
    /// One fresh OS thread per vthread per attempt — the pre-pool engine,
    /// kept as the fallback (e.g. when attempts must not share any OS
    /// threads) and as the equivalence/throughput baseline. Both executors
    /// produce byte-identical sketches, certificates, and attempt counts;
    /// `tests/pool_equivalence.rs` pins this across the corpus.
    Spawning,
}

impl ExecutorKind {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ExecutorKind::Pooled => "pooled",
            ExecutorKind::Spawning => "spawning",
        }
    }
}

/// How a failed feedback-strategy attempt is turned into flip candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedbackMode {
    /// Stream events through a [`feedback::StreamingExtractor`] installed
    /// as the run's observer ([`TraceMode::Feedback`]): the attempt's full
    /// event vector is never buffered, only the extractor's bounded
    /// analysis state. The default.
    Streaming,
    /// Buffer the full trace ([`TraceMode::Full`]) and analyse it after the
    /// run — the pre-streaming behavior, kept for the A/B throughput
    /// measurement (experiment E12) and the equivalence suite. Both modes
    /// produce identical candidates, attempt counts, and certificates.
    Buffered,
}

impl FeedbackMode {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            FeedbackMode::Streaming => "streaming",
            FeedbackMode::Buffered => "buffered",
        }
    }
}

/// Frontier discipline for the feedback strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchOrder {
    /// Breadth-first (default).
    Bfs,
    /// Depth-first (the ablation alternative).
    Dfs,
}

impl SearchOrder {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SearchOrder::Bfs => "bfs",
            SearchOrder::Dfs => "dfs",
        }
    }
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            strategy: Strategy::Feedback,
            max_attempts: 1000,
            base_seed: 0x5eed,
            fanout: 12,
            restart_period: 10,
            ranking: feedback::Ranking::LocksetThenRecency,
            search: SearchOrder::Bfs,
            feedback_mode: FeedbackMode::Streaming,
            workers: 1,
            executor: ExecutorKind::Pooled,
            pool_width: DEFAULT_POOL_WIDTH,
            stop: None,
        }
    }
}

/// Default [`ExploreConfig::pool_width`] hint: covers every bug in the
/// evaluation corpus (peak concurrent vthreads ≤ 8) without oversubscribing
/// typical hosts at the default single worker.
pub const DEFAULT_POOL_WIDTH: usize = 8;

/// The result of [`ExploreConfig::validate`]: the (possibly adjusted)
/// configuration plus the clamp decision, if one was made. Callers that
/// front a terminal (the CLI, the daemon's per-job setup) decide whether
/// and where to surface [`ClampDecision::warning`]; library use stays
/// silent.
#[derive(Debug, Clone)]
pub struct ValidationOutcome {
    /// The configuration after clamping.
    pub config: ExploreConfig,
    /// `Some` iff the requested knobs oversubscribed the host.
    pub clamp: Option<ClampDecision>,
}

/// A recorded `workers × pool_width` clamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClampDecision {
    /// `(workers, pool_width)` as requested (after the ≥1 floor).
    pub requested: (usize, usize),
    /// `(workers, pool_width)` actually applied.
    pub applied: (usize, usize),
    /// The host parallelism the knobs were clamped against.
    pub host: usize,
}

impl ClampDecision {
    /// The human-readable warning line (the text `validate()` itself used
    /// to print to stderr).
    pub fn warning(&self) -> String {
        format!(
            "workers x pool width {}x{} oversubscribes {} available core(s); \
             clamped to {}x{}",
            self.requested.0, self.requested.1, self.host, self.applied.0, self.applied.1
        )
    }
}

impl ExploreConfig {
    /// Clamps `workers × pool_width` against the host's available
    /// parallelism, returning the (possibly adjusted) configuration and
    /// the clamp decision. Nothing is printed — the caller owns the
    /// terminal (the CLI and daemon surface [`ClampDecision::warning`];
    /// library callers typically don't).
    ///
    /// `workers` and `pool_width` are independent knobs — each exploration
    /// worker owns a pool — so their product is the OS-thread appetite of a
    /// reproduction. The clamp never changes *results* (worker count and
    /// pool width are both schedule-invisible; the pool grows past its hint
    /// on demand), only resource pressure.
    pub fn validate(mut self) -> ValidationOutcome {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.workers = self.workers.max(1);
        self.pool_width = self.pool_width.max(1);
        if self.workers * self.pool_width <= host {
            return ValidationOutcome {
                config: self,
                clamp: None,
            };
        }
        let requested = (self.workers, self.pool_width);
        if self.workers > host {
            self.workers = host;
        }
        self.pool_width = (host / self.workers).max(1);
        let clamp = ClampDecision {
            requested,
            applied: (self.workers, self.pool_width),
            host,
        };
        ValidationOutcome {
            config: self,
            clamp: Some(clamp),
        }
    }
}

/// One attempt's summary.
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// 1-based attempt number.
    pub index: u32,
    /// Whether the attempt ended in the target failure.
    pub reproduced: bool,
    /// Whether the attempt aborted on divergence/stall.
    pub diverged: bool,
    /// Final status, rendered.
    pub status: String,
    /// Number of flip constraints active.
    pub constraints: usize,
    /// Exploration seed used.
    pub seed: u64,
    /// Canonical plan signature (seed plus sorted constraints). Unique
    /// across a reproduction's history: the explorer never spends budget
    /// on a plan it has already tried.
    pub plan: String,
}

/// The result of a reproduction effort.
#[derive(Debug, Clone)]
pub struct Reproduction {
    /// Whether the bug was reproduced within budget.
    pub reproduced: bool,
    /// Attempts consumed (= index of the successful attempt if reproduced).
    pub attempts: u32,
    /// The minted certificate, if reproduced.
    pub certificate: Option<Certificate>,
    /// Per-attempt history, ordered by attempt index. In parallel mode
    /// attempts numbered above the winning index may appear here too: they
    /// were already in flight when the winner finished.
    pub history: Vec<AttemptRecord>,
    /// Whether the effort ended because [`ExploreConfig::stop`] tripped
    /// (wall-clock timeout or external cancellation) before the attempt
    /// budget was spent. Always `false` on success.
    pub stopped: bool,
    /// Fast-forward verification outcome for checkpoint-bearing (ring-
    /// flushed) sketches; `None` for classic sketches and genesis
    /// checkpoints. A failed verification aborts the reproduction before
    /// any attempt is spent.
    pub checkpoint: Option<CheckpointStatus>,
}

/// The one-time integrity check run before exploring a ring-flushed
/// sketch: the production prefix is re-executed
/// ([`crate::recorder::verify_checkpoint`]) and the state snapshot at the
/// boundary byte-compared against the one the flush embedded.
#[derive(Debug, Clone)]
pub struct CheckpointStatus {
    /// The checkpoint boundary, in picks.
    pub boundary: u64,
    /// Whether the re-derived boundary snapshot matched byte-for-byte.
    pub verified: bool,
    /// The mismatch explanation when `verified` is false.
    pub detail: Option<String>,
}

#[derive(Debug, Clone)]
struct Plan {
    seed: u64,
    constraints: Vec<OrderConstraint>,
}

fn plan_signature(constraints: &[OrderConstraint], seed: u64) -> String {
    let mut cs: Vec<String> = constraints.iter().map(|c| c.to_string()).collect();
    cs.sort();
    format!("{seed}|{}", cs.join(";"))
}

/// The signature the plan `base + [extra]` *would* have — lets the dedup
/// check run before the constraint vector is cloned.
fn plan_signature_with(base: &[OrderConstraint], extra: &OrderConstraint, seed: u64) -> String {
    let mut cs: Vec<String> = base.iter().map(|c| c.to_string()).collect();
    cs.push(extra.to_string());
    cs.sort();
    format!("{seed}|{}", cs.join(";"))
}

/// The search state shared by every worker: the plan frontier plus the
/// signature set of every plan ever scheduled. Serial exploration owns one
/// directly; parallel exploration puts it behind a mutex.
struct SearchState {
    frontier: VecDeque<Plan>,
    /// Signatures of every plan ever handed out — the dedup ledger.
    tried: BTreeSet<String>,
    /// Restart counter: round `k` proposes base seed + `k`.
    round: u64,
    /// Random-strategy seed cursor; monotone so concurrent claims never
    /// derive the same seed.
    random_cursor: u64,
    /// Attempts currently executing (parallel mode). While nonzero, an
    /// empty frontier may still be refilled by in-flight feedback, so idle
    /// workers wait instead of burning restart rounds.
    in_flight: usize,
}

impl SearchState {
    fn new(explore: &ExploreConfig) -> SearchState {
        let mut tried = BTreeSet::new();
        tried.insert(plan_signature(&[], explore.base_seed));
        SearchState {
            frontier: VecDeque::from([Plan {
                seed: explore.base_seed,
                constraints: Vec::new(),
            }]),
            tried,
            round: 0,
            random_cursor: 0,
            in_flight: 0,
        }
    }

    /// A fresh-seed restart plan that has never been tried. The round
    /// counter advances until the signature is fresh, so a restart never
    /// silently repeats an interleaving the budget already paid for.
    fn restart_plan(&mut self, explore: &ExploreConfig) -> Plan {
        loop {
            self.round += 1;
            let seed = explore.base_seed.wrapping_add(self.round);
            if self.tried.insert(plan_signature(&[], seed)) {
                return Plan {
                    seed,
                    constraints: Vec::new(),
                };
            }
        }
    }

    /// The plan for global attempt `attempt`, or `None` when the frontier
    /// is empty but in-flight attempts may still refill it (the caller
    /// should wait and retry).
    fn next_plan(&mut self, explore: &ExploreConfig, attempt: u32) -> Option<Plan> {
        match explore.strategy {
            Strategy::Random => loop {
                // Random is the no-feedback ablation, but it still must not
                // waste budget: advance the cursor until the derived seed's
                // signature is fresh.
                self.random_cursor += 1;
                let seed = explore
                    .base_seed
                    .wrapping_add(self.random_cursor.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                if self.tried.insert(plan_signature(&[], seed)) {
                    return Some(Plan {
                        seed,
                        constraints: Vec::new(),
                    });
                }
            },
            Strategy::Feedback => {
                let restart = explore.restart_period > 0
                    && attempt > 1
                    && (attempt - 1).is_multiple_of(explore.restart_period);
                if restart {
                    return Some(self.restart_plan(explore));
                }
                let popped = match explore.search {
                    SearchOrder::Bfs => self.frontier.pop_front(),
                    SearchOrder::Dfs => self.frontier.pop_back(),
                };
                match popped {
                    Some(p) => Some(p),
                    None if self.in_flight > 0 => None,
                    None => Some(self.restart_plan(explore)),
                }
            }
        }
    }

    /// Merges pre-extracted flip candidates back into the frontier,
    /// best-first, deduplicated against every plan ever scheduled.
    ///
    /// Candidate *extraction* ([`extract_candidates`]) is kept separate
    /// because it runs happens-before analysis over the whole attempt
    /// trace — far too expensive to do under the shared search lock.
    fn merge_candidates(
        &mut self,
        explore: &ExploreConfig,
        plan: &Plan,
        cands: Vec<feedback::FlipCandidate>,
    ) {
        // DFS pops from the back, so highest priority must land last.
        let ordered: Vec<_> = match explore.search {
            SearchOrder::Bfs => cands,
            SearchOrder::Dfs => cands.into_iter().rev().collect(),
        };
        for cand in ordered {
            if plan.constraints.contains(&cand.constraint) {
                continue;
            }
            // Signature first: the constraint vector is cloned only for
            // plans that actually enter the frontier, not for every
            // candidate the dedup ledger rejects.
            let signature = plan_signature_with(&plan.constraints, &cand.constraint, plan.seed);
            if self.tried.insert(signature) {
                let mut constraints = plan.constraints.clone();
                constraints.push(cand.constraint);
                // Breadth-first: every single flip is tried before any
                // composed set; `cands` arrives best-first.
                self.frontier.push_back(Plan {
                    seed: plan.seed,
                    constraints,
                });
            }
        }
    }
}

/// Ranks and truncates a failed attempt's flip candidates. In streaming
/// mode the extractor already did the happens-before analysis during the
/// run; in buffered mode it is done here over the retained trace. Either
/// way, callers finish the work *outside* any shared lock.
///
/// `boundary` is the sketch's checkpoint boundary (0 for classic
/// sketches): fast-forwarded prefix events are production history, not
/// attempt behavior, so buffered analysis starts at the boundary — the
/// same window the streaming path sees through [`WindowObserver`].
fn extract_candidates(
    explore: &ExploreConfig,
    trace: &Trace,
    extractor: Option<feedback::StreamingExtractor>,
    boundary: u64,
) -> Vec<feedback::FlipCandidate> {
    let ranked = match extractor {
        Some(ext) => ext.finish_ranked(explore.ranking),
        None => {
            let events = trace.events();
            let start = events.partition_point(|e| e.gseq < boundary);
            feedback::candidates_ranked_in(&events[start..], explore.ranking)
        }
    };
    ranked.into_iter().take(explore.fanout).collect()
}

/// Forwards only post-boundary events to the wrapped extractor: during
/// fast-forward the attempt is replaying the production prefix, which must
/// not contribute flip candidates (their action indices would also
/// disagree with the replay scheduler's boundary-origin counters).
struct WindowObserver<'a> {
    boundary: u64,
    inner: &'a mut feedback::StreamingExtractor,
}

impl Observer for WindowObserver<'_> {
    fn on_event(&mut self, event: &Event) -> ObserverCharge {
        if event.gseq >= self.boundary {
            self.inner.on_event(event)
        } else {
            ObserverCharge::FREE
        }
    }
}

/// Runs one replay attempt for a plan against the shared sketch index.
///
/// The trace mode is the cheapest one the strategy allows: feedback
/// attempts in streaming mode deliver events to a
/// [`feedback::StreamingExtractor`] and buffer nothing; buffered mode
/// retains the full trace for post-hoc analysis; random attempts need
/// neither (the oracle judges status and schedule only).
fn run_attempt(
    program: &dyn Program,
    index: &Arc<SketchIndex>,
    vm_config: &VmConfig,
    explore: &ExploreConfig,
    plan: &Plan,
    pool: Option<&VthreadPool>,
) -> (RunOutcome, Option<feedback::StreamingExtractor>) {
    let mut sched =
        FastForwardScheduler::with_index(Arc::clone(index), plan.constraints.clone(), plan.seed);
    let boundary = sched.boundary();
    let mut cfg = vm_config.clone();
    cfg.world = program.world();
    // Hosting a vthread on a pooled worker vs. a fresh OS thread is
    // schedule-invisible, so the executor choice cannot perturb outcomes.
    let run_vm = |cfg: VmConfig,
                  sched: &mut FastForwardScheduler,
                  observer: &mut dyn pres_tvm::trace::Observer| {
        let body = program.root();
        match pool {
            Some(pool) => vm::run_with_pool(
                cfg,
                program.resources(),
                sched,
                observer,
                pool,
                move |ctx| body(ctx),
            ),
            None => vm::run(cfg, program.resources(), sched, observer, move |ctx| {
                body(ctx)
            }),
        }
    };
    match (explore.strategy, explore.feedback_mode) {
        (Strategy::Feedback, FeedbackMode::Streaming) => {
            cfg.trace_mode = TraceMode::Feedback;
            let mut ext = feedback::StreamingExtractor::new();
            let out = run_vm(
                cfg,
                &mut sched,
                &mut WindowObserver {
                    boundary,
                    inner: &mut ext,
                },
            );
            (out, Some(ext))
        }
        (Strategy::Feedback, FeedbackMode::Buffered) => {
            cfg.trace_mode = TraceMode::Full;
            let out = run_vm(cfg, &mut sched, &mut NullObserver);
            (out, None)
        }
        (Strategy::Random, _) => {
            cfg.trace_mode = TraceMode::Off;
            let out = run_vm(cfg, &mut sched, &mut NullObserver);
            (out, None)
        }
    }
}

fn attempt_record(attempt: u32, plan: &Plan, out: &RunOutcome, reproduced: bool) -> AttemptRecord {
    AttemptRecord {
        index: attempt,
        reproduced,
        diverged: matches!(&out.status, RunStatus::Aborted(_)),
        status: out.status.to_string(),
        constraints: plan.constraints.len(),
        seed: plan.seed,
        plan: plan_signature(&plan.constraints, plan.seed),
    }
}

/// Runs the reproduction loop for a recorded failure.
///
/// `target_signature` is the failure signature the production run exhibited
/// (from [`crate::sketch::SketchMeta::failure_signature`]).
pub fn reproduce(
    program: &dyn Program,
    sketch: &Sketch,
    target_signature: &str,
    vm_config: &VmConfig,
    explore: &ExploreConfig,
) -> Reproduction {
    reproduce_with_oracle(
        program,
        sketch,
        &StatusOracle::new(target_signature),
        vm_config,
        explore,
    )
}

/// As [`reproduce`], but the bug's manifestation is decided by an arbitrary
/// [`FailureOracle`] — the hook through which silent-corruption bugs
/// (wrong output, no crash) are reproduced. The minted certificate's
/// expected signature is whatever the oracle reported; verify such
/// certificates with [`Certificate::replay_with`].
///
/// With [`ExploreConfig::workers`] > 1 attempts run concurrently on OS
/// threads; the reported attempt count and certificate come from the
/// lowest-numbered successful attempt.
pub fn reproduce_with_oracle(
    program: &dyn Program,
    sketch: &Sketch,
    oracle: &dyn FailureOracle,
    vm_config: &VmConfig,
    explore: &ExploreConfig,
) -> Reproduction {
    reproduce_with_oracle_and_pool(program, sketch, oracle, vm_config, explore, None)
}

/// As [`reproduce_with_oracle`], additionally reusing a caller-owned
/// [`VthreadPool`] for the serial exploration path. A long-lived caller
/// running many reproductions back to back (the `pres-svc` job workers)
/// keeps one warm pool per worker, so steady-state *jobs* — not just
/// steady-state attempts — perform zero OS thread spawns. Ignored when
/// `explore.workers > 1` (each parallel exploration worker owns its own
/// pool) or when the executor is [`ExecutorKind::Spawning`]. Pool identity
/// is schedule-invisible, so results are byte-identical either way.
pub fn reproduce_with_oracle_and_pool(
    program: &dyn Program,
    sketch: &Sketch,
    oracle: &dyn FailureOracle,
    vm_config: &VmConfig,
    explore: &ExploreConfig,
    pool: Option<&VthreadPool>,
) -> Reproduction {
    // One immutable index serves every attempt (and every worker): the
    // sketch is scanned exactly once per reproduction, not once per
    // scheduler construction.
    let index = Arc::new(SketchIndex::new(sketch));
    reproduce_with_index(program, &index, oracle, vm_config, explore, pool)
}

/// As [`reproduce_with_oracle_and_pool`], but against a caller-built
/// [`SketchIndex`]. The index is a pure function of the sketch, so a
/// caller that runs many reproductions of one sketch (the `pres-svc`
/// decode cache) can build it once and share it; the search — and the
/// minted certificate — is byte-identical to the sketch-taking entry
/// points.
pub fn reproduce_with_index(
    program: &dyn Program,
    index: &Arc<SketchIndex>,
    oracle: &dyn FailureOracle,
    vm_config: &VmConfig,
    explore: &ExploreConfig,
    pool: Option<&VthreadPool>,
) -> Reproduction {
    // Ring-flushed sketches are verified once, up front: re-derive the
    // boundary snapshot from the production seed and byte-compare it with
    // the one the flush embedded. Exploring past a bogus checkpoint would
    // replay a window that never happened, so a mismatch aborts before any
    // attempt is spent.
    let checkpoint = match index.checkpoint().filter(|cp| !cp.is_genesis()) {
        Some(cp) => {
            match verify_checkpoint(program, cp, index.mechanism(), vm_config, pool) {
                Ok(()) => Some(CheckpointStatus {
                    boundary: cp.boundary,
                    verified: true,
                    detail: None,
                }),
                Err(detail) => {
                    return Reproduction {
                        reproduced: false,
                        attempts: 0,
                        certificate: None,
                        history: Vec::new(),
                        stopped: false,
                        checkpoint: Some(CheckpointStatus {
                            boundary: cp.boundary,
                            verified: false,
                            detail: Some(detail),
                        }),
                    };
                }
            }
        }
        None => None,
    };
    let mut rep = if explore.workers > 1 {
        reproduce_parallel(program, index, oracle, vm_config, explore)
    } else {
        reproduce_serial(program, index, oracle, vm_config, explore, pool)
    };
    rep.checkpoint = checkpoint;
    rep
}

fn reproduce_serial(
    program: &dyn Program,
    index: &Arc<SketchIndex>,
    oracle: &dyn FailureOracle,
    vm_config: &VmConfig,
    explore: &ExploreConfig,
    external_pool: Option<&VthreadPool>,
) -> Reproduction {
    let mut history = Vec::new();
    let mut search = SearchState::new(explore);
    // One pool serves every attempt of the loop: attempt 1 warms it to the
    // program's peak vthread count, every later attempt is spawn-free. A
    // caller-owned pool extends that reuse across reproductions.
    let owned_pool = (explore.executor == ExecutorKind::Pooled && external_pool.is_none())
        .then(|| VthreadPool::new(explore.pool_width));
    let pool = match explore.executor {
        ExecutorKind::Pooled => external_pool.or(owned_pool.as_ref()),
        ExecutorKind::Spawning => None,
    };
    let boundary = index.checkpoint().map_or(0, |cp| cp.boundary);

    for attempt in 1..=explore.max_attempts {
        if explore.stop.as_ref().is_some_and(StopToken::is_stopped) {
            return Reproduction {
                reproduced: false,
                attempts: attempt - 1,
                certificate: None,
                history,
                stopped: true,
                checkpoint: None,
            };
        }
        let plan = search
            .next_plan(explore, attempt)
            .expect("serial search always yields a plan");
        let (out, extractor) = run_attempt(program, index, vm_config, explore, &plan, pool);
        let verdict = oracle.judge(&out);
        history.push(attempt_record(attempt, &plan, &out, verdict.is_some()));

        if let Some(signature) = verdict {
            let certificate = Certificate {
                program: program.name(),
                schedule: out.schedule,
                expected_signature: signature,
                processors: vm_config.processors,
            };
            return Reproduction {
                reproduced: true,
                attempts: attempt,
                certificate: Some(certificate),
                history,
                stopped: false,
                checkpoint: None,
            };
        }

        if explore.strategy == Strategy::Feedback {
            let cands = extract_candidates(explore, &out.trace, extractor, boundary);
            search.merge_candidates(explore, &plan, cands);
        }
    }

    Reproduction {
        reproduced: false,
        attempts: explore.max_attempts,
        certificate: None,
        history,
        stopped: false,
        checkpoint: None,
    }
}

/// State shared by the parallel workers.
struct ParallelShared<'a> {
    explore: &'a ExploreConfig,
    search: Mutex<SearchState>,
    /// Signalled whenever an attempt finishes: waiting workers recheck the
    /// frontier and the cancellation flag.
    work_ready: Condvar,
    /// The next global attempt index to claim (1-based).
    next_attempt: AtomicU32,
    /// Lowest successful attempt index so far; `u32::MAX` means none. This
    /// is both the first-success cancellation flag and the determinism
    /// rule: no attempt numbered above it can change the outcome.
    winner: AtomicU32,
    results: Mutex<Vec<(AttemptRecord, Option<Certificate>)>>,
}

impl ParallelShared<'_> {
    /// Whether attempt `attempt` is pointless: a lower-numbered attempt
    /// already reproduced the failure.
    fn cancelled_for(&self, attempt: u32) -> bool {
        self.winner.load(Ordering::SeqCst) < attempt
    }
}

fn parallel_worker(
    program: &dyn Program,
    index: &Arc<SketchIndex>,
    oracle: &dyn FailureOracle,
    vm_config: &VmConfig,
    shared: &ParallelShared<'_>,
) {
    // One pool per worker (not shared): checkout never contends across
    // workers, and a worker's attempts reuse its own warm workers.
    let pool = (shared.explore.executor == ExecutorKind::Pooled)
        .then(|| VthreadPool::new(shared.explore.pool_width));
    let stop = shared.explore.stop.as_ref();
    loop {
        // Claim a global attempt index; budget, cancellation, and the stop
        // token are all judged before any work is done for the claim.
        if stop.is_some_and(StopToken::is_stopped) {
            return;
        }
        let attempt = shared.next_attempt.fetch_add(1, Ordering::SeqCst);
        if attempt > shared.explore.max_attempts || shared.cancelled_for(attempt) {
            return;
        }

        // Obtain a plan under the search lock, waiting while the frontier
        // is empty but in-flight attempts may still refill it. With a stop
        // token present the wait is bounded: a deadline can trip without
        // anyone calling notify.
        let plan = {
            let mut s = shared.search.lock();
            loop {
                if shared.cancelled_for(attempt) {
                    return;
                }
                if stop.is_some_and(StopToken::is_stopped) {
                    return;
                }
                if let Some(plan) = s.next_plan(shared.explore, attempt) {
                    s.in_flight += 1;
                    break plan;
                }
                match stop {
                    Some(_) => {
                        shared
                            .work_ready
                            .wait_timeout(&mut s, Duration::from_millis(20));
                    }
                    None => shared.work_ready.wait(&mut s),
                }
            }
        };

        let (out, extractor) =
            run_attempt(program, index, vm_config, shared.explore, &plan, pool.as_ref());
        let verdict = oracle.judge(&out);
        let reproduced = verdict.is_some();
        let record = attempt_record(attempt, &plan, &out, reproduced);
        let certificate = verdict.map(|signature| Certificate {
            program: program.name(),
            schedule: out.schedule,
            expected_signature: signature,
            processors: vm_config.processors,
        });
        shared.results.lock().push((record, certificate));

        if reproduced {
            // Publish this success, keeping the lowest index.
            let mut cur = shared.winner.load(Ordering::SeqCst);
            while attempt < cur {
                match shared.winner.compare_exchange(
                    cur,
                    attempt,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
        // Finishing the candidate ranking is the expensive half of
        // feedback; do it before taking the search lock so workers'
        // analyses overlap.
        let boundary = index.checkpoint().map_or(0, |cp| cp.boundary);
        let cands = (!reproduced && shared.explore.strategy == Strategy::Feedback)
            .then(|| extract_candidates(shared.explore, &out.trace, extractor, boundary));
        {
            let mut s = shared.search.lock();
            s.in_flight -= 1;
            if let Some(cands) = cands {
                s.merge_candidates(shared.explore, &plan, cands);
            }
        }
        shared.work_ready.notify_all();
        if reproduced {
            return;
        }
    }
}

fn reproduce_parallel(
    program: &dyn Program,
    index: &Arc<SketchIndex>,
    oracle: &dyn FailureOracle,
    vm_config: &VmConfig,
    explore: &ExploreConfig,
) -> Reproduction {
    let shared = ParallelShared {
        explore,
        search: Mutex::new(SearchState::new(explore)),
        work_ready: Condvar::new(),
        next_attempt: AtomicU32::new(1),
        winner: AtomicU32::new(u32::MAX),
        results: Mutex::new(Vec::new()),
    };

    thread::scope(|scope| {
        for _ in 0..explore.workers {
            scope.spawn(|| parallel_worker(program, index, oracle, vm_config, &shared));
        }
    });

    let mut entries = std::mem::take(&mut *shared.results.lock());
    entries.sort_by_key(|(record, _)| record.index);
    let winner = shared.winner.load(Ordering::SeqCst);
    let mut certificate = None;
    let mut history = Vec::with_capacity(entries.len());
    for (record, cert) in entries {
        if record.index == winner {
            certificate = cert;
        }
        history.push(record);
    }

    if winner == u32::MAX {
        let stopped = explore.stop.as_ref().is_some_and(StopToken::is_stopped);
        Reproduction {
            reproduced: false,
            attempts: if stopped {
                history.len() as u32
            } else {
                explore.max_attempts
            },
            certificate: None,
            history,
            stopped,
            checkpoint: None,
        }
    } else {
        Reproduction {
            reproduced: true,
            attempts: winner,
            certificate,
            history,
            stopped: false,
            checkpoint: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ClosureProgram;
    use crate::recorder::record_until_failure;
    use crate::sketch::Mechanism;
    use pres_tvm::prelude::*;
    use std::collections::BTreeSet;

    /// The canonical atomicity violation: unprotected read-compute-write
    /// with plenty of surrounding work so the window rarely splits.
    fn atomicity_program() -> impl Program {
        let mut spec = ResourceSpec::new();
        let counter = spec.var("counter", 0);
        let m = spec.lock("m");
        let noise = spec.var("noise", 0);
        ClosureProgram::new("atomicity", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                let kids: Vec<ThreadId> = (0..2)
                    .map(|i| {
                        ctx.spawn(&format!("w{i}"), move |ctx| {
                            for k in 0..6u64 {
                                // Plenty of properly-locked work.
                                ctx.with_lock(m, |ctx| {
                                    let v = ctx.read(noise);
                                    ctx.write(noise, v + k);
                                });
                                ctx.compute(40);
                            }
                            // The buggy window: unprotected RMW.
                            let v = ctx.read(counter);
                            ctx.compute(8);
                            ctx.write(counter, v + 1);
                        })
                    })
                    .collect();
                for k in kids {
                    ctx.join(k);
                }
                let total = ctx.read(counter);
                ctx.check(total == 2, "lost update");
            })
        })
    }

    #[test]
    fn rw_sketch_reproduces_on_first_attempt() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Rw, &config, 0..2000)
            .expect("failing seed exists");
        let rep = reproduce(
            &prog,
            &run.sketch,
            &run.sketch.meta.failure_signature,
            &config,
            &ExploreConfig::default(),
        );
        assert!(rep.reproduced);
        assert_eq!(rep.attempts, 1, "{:#?}", rep.history);
    }

    #[test]
    fn sync_sketch_with_feedback_reproduces_quickly() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000)
            .expect("failing seed exists");
        let rep = reproduce(
            &prog,
            &run.sketch,
            &run.sketch.meta.failure_signature,
            &config,
            &ExploreConfig::default(),
        );
        assert!(rep.reproduced, "{:#?}", rep.history);
        assert!(
            rep.attempts <= 10,
            "feedback should reproduce within 10 attempts, took {}",
            rep.attempts
        );
        // The certificate reproduces deterministically.
        let cert = rep.certificate.expect("certificate minted");
        for _ in 0..5 {
            cert.replay(&prog).expect("certificate replays");
        }
    }

    #[test]
    fn feedback_beats_random_on_attempts() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000)
            .expect("failing seed exists");
        let target = run.sketch.meta.failure_signature.clone();
        let fb = reproduce(
            &prog,
            &run.sketch,
            &target,
            &config,
            &ExploreConfig {
                strategy: Strategy::Feedback,
                max_attempts: 200,
                ..ExploreConfig::default()
            },
        );
        let rnd = reproduce(
            &prog,
            &run.sketch,
            &target,
            &config,
            &ExploreConfig {
                strategy: Strategy::Random,
                max_attempts: 200,
                ..ExploreConfig::default()
            },
        );
        assert!(fb.reproduced);
        let rnd_attempts = if rnd.reproduced { rnd.attempts } else { 201 };
        assert!(
            fb.attempts <= rnd_attempts,
            "feedback {} vs random {rnd_attempts}",
            fb.attempts
        );
    }

    #[test]
    fn unreproducible_target_exhausts_budget() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        let rep = reproduce(
            &prog,
            &run.sketch,
            "assert:some bug that does not exist",
            &config,
            &ExploreConfig {
                max_attempts: 5,
                ..ExploreConfig::default()
            },
        );
        assert!(!rep.reproduced);
        assert_eq!(rep.attempts, 5);
        assert!(rep.certificate.is_none());
        assert_eq!(rep.history.len(), 5);
    }

    #[test]
    fn dfs_search_also_reproduces() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        let rep = reproduce(
            &prog,
            &run.sketch,
            &run.sketch.meta.failure_signature,
            &config,
            &ExploreConfig {
                search: SearchOrder::Dfs,
                max_attempts: 200,
                ..ExploreConfig::default()
            },
        );
        assert!(rep.reproduced, "{:#?}", rep.history);
    }

    #[test]
    fn restarts_can_be_disabled() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        let rep = reproduce(
            &prog,
            &run.sketch,
            &run.sketch.meta.failure_signature,
            &config,
            &ExploreConfig {
                restart_period: 0,
                max_attempts: 200,
                ..ExploreConfig::default()
            },
        );
        assert!(rep.reproduced);
        // Without restarts, every attempt uses the base seed.
        assert!(rep
            .history
            .iter()
            .all(|h| h.seed == ExploreConfig::default().base_seed));
    }

    #[test]
    fn history_indices_are_sequential() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        let rep = reproduce(
            &prog,
            &run.sketch,
            "assert:never",
            &config,
            &ExploreConfig {
                max_attempts: 4,
                ..ExploreConfig::default()
            },
        );
        let idx: Vec<u32> = rep.history.iter().map(|h| h.index).collect();
        assert_eq!(idx, vec![1, 2, 3, 4]);
    }

    #[test]
    fn serial_history_never_repeats_a_plan() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        // An unmatchable target forces the full budget, restarts included.
        let rep = reproduce(
            &prog,
            &run.sketch,
            "assert:never",
            &config,
            &ExploreConfig {
                max_attempts: 60,
                restart_period: 3,
                ..ExploreConfig::default()
            },
        );
        let plans: BTreeSet<&str> = rep.history.iter().map(|h| h.plan.as_str()).collect();
        assert_eq!(
            plans.len(),
            rep.history.len(),
            "duplicate (seed, constraints) plan in serial history"
        );
    }

    #[test]
    fn random_strategy_never_repeats_a_seed() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        let rep = reproduce(
            &prog,
            &run.sketch,
            "assert:never",
            &config,
            &ExploreConfig {
                strategy: Strategy::Random,
                max_attempts: 60,
                ..ExploreConfig::default()
            },
        );
        let seeds: BTreeSet<u64> = rep.history.iter().map(|h| h.seed).collect();
        assert_eq!(seeds.len(), rep.history.len());
        // And none of them equals the pre-seeded base plan's seed.
        assert!(seeds.iter().all(|&s| s != ExploreConfig::default().base_seed));
    }

    #[test]
    fn parallel_workers_reproduce_and_mint_replayable_certificate() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        let rep = reproduce(
            &prog,
            &run.sketch,
            &run.sketch.meta.failure_signature,
            &config,
            &ExploreConfig {
                workers: 4,
                ..ExploreConfig::default()
            },
        );
        assert!(rep.reproduced, "{:#?}", rep.history);
        // The winner is the lowest-numbered success in the history.
        let lowest = rep
            .history
            .iter()
            .filter(|h| h.reproduced)
            .map(|h| h.index)
            .min()
            .expect("a successful attempt is recorded");
        assert_eq!(rep.attempts, lowest);
        let cert = rep.certificate.expect("certificate minted");
        for _ in 0..5 {
            cert.replay(&prog).expect("certificate replays");
        }
    }

    #[test]
    fn parallel_failure_spends_exactly_the_budget() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        let rep = reproduce(
            &prog,
            &run.sketch,
            "assert:never",
            &config,
            &ExploreConfig {
                workers: 4,
                max_attempts: 16,
                ..ExploreConfig::default()
            },
        );
        assert!(!rep.reproduced);
        assert_eq!(rep.attempts, 16);
        let idx: Vec<u32> = rep.history.iter().map(|h| h.index).collect();
        assert_eq!(idx, (1..=16).collect::<Vec<u32>>());
    }

    #[test]
    fn streaming_and_buffered_feedback_explore_identically() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        // An unmatchable target forces the full budget, so the two modes'
        // entire frontier evolutions are compared plan by plan.
        let explore_with = |mode| ExploreConfig {
            feedback_mode: mode,
            max_attempts: 30,
            ..ExploreConfig::default()
        };
        let streaming = reproduce(
            &prog,
            &run.sketch,
            "assert:never",
            &config,
            &explore_with(FeedbackMode::Streaming),
        );
        let buffered = reproduce(
            &prog,
            &run.sketch,
            "assert:never",
            &config,
            &explore_with(FeedbackMode::Buffered),
        );
        let plans = |rep: &Reproduction| -> Vec<String> {
            rep.history.iter().map(|h| h.plan.clone()).collect()
        };
        assert_eq!(plans(&streaming), plans(&buffered));
    }

    #[test]
    fn parallel_history_never_repeats_a_plan() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        for strategy in [Strategy::Feedback, Strategy::Random] {
            let rep = reproduce(
                &prog,
                &run.sketch,
                "assert:never",
                &config,
                &ExploreConfig {
                    strategy,
                    workers: 4,
                    max_attempts: 60,
                    restart_period: 3,
                    ..ExploreConfig::default()
                },
            );
            let plans: BTreeSet<&str> = rep.history.iter().map(|h| h.plan.as_str()).collect();
            assert_eq!(
                plans.len(),
                rep.history.len(),
                "duplicate plan under {} strategy",
                strategy.name()
            );
        }
    }

    // validate() assertions must hold on any host, so they are phrased
    // against the live available_parallelism value, not a fixed core count.
    #[test]
    fn validate_clamps_zero_knobs_to_one() {
        let cfg = ExploreConfig {
            workers: 0,
            pool_width: 0,
            ..ExploreConfig::default()
        }
        .validate()
        .config;
        assert!(cfg.workers >= 1);
        assert!(cfg.pool_width >= 1);
    }

    #[test]
    fn validate_keeps_a_serial_minimal_config_untouched() {
        let outcome = ExploreConfig {
            workers: 1,
            pool_width: 1,
            ..ExploreConfig::default()
        }
        .validate();
        assert_eq!((outcome.config.workers, outcome.config.pool_width), (1, 1));
        assert!(outcome.clamp.is_none());
    }

    #[test]
    fn validate_bounds_the_thread_appetite_by_the_host() {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let outcome = ExploreConfig {
            workers: host * 64,
            pool_width: host * 64,
            ..ExploreConfig::default()
        }
        .validate();
        let cfg = &outcome.config;
        // After clamping, workers never exceed the host and the product
        // only exceeds it when pool_width bottomed out at its floor of 1.
        assert!(cfg.workers <= host);
        assert!(cfg.pool_width >= 1);
        assert!(cfg.workers * cfg.pool_width <= host.max(cfg.workers));
        // An oversubscribing request always yields a recorded decision,
        // and the warning text carries the numbers.
        let clamp = outcome.clamp.expect("oversubscription records a clamp");
        assert_eq!(clamp.requested, (host * 64, host * 64));
        assert_eq!(clamp.applied, (cfg.workers, cfg.pool_width));
        assert_eq!(clamp.host, host);
        assert!(clamp.warning().contains("oversubscribes"));
    }

    #[test]
    fn validate_leaves_an_undersubscribed_config_untouched() {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let outcome = ExploreConfig {
            workers: 1,
            pool_width: host,
            ..ExploreConfig::default()
        }
        .validate();
        assert_eq!((outcome.config.workers, outcome.config.pool_width), (1, host));
        assert!(outcome.clamp.is_none());
    }

    #[test]
    fn pre_tripped_stop_token_spends_no_attempts() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        let token = StopToken::new();
        token.stop();
        for workers in [1usize, 4] {
            let rep = reproduce(
                &prog,
                &run.sketch,
                &run.sketch.meta.failure_signature,
                &config,
                &ExploreConfig {
                    workers,
                    stop: Some(token.clone()),
                    ..ExploreConfig::default()
                },
            );
            assert!(!rep.reproduced, "workers={workers}");
            assert!(rep.stopped, "workers={workers}");
            assert_eq!(rep.attempts, 0, "workers={workers}");
            assert!(rep.history.is_empty(), "workers={workers}");
        }
    }

    #[test]
    fn deadline_stop_token_cuts_an_unmatchable_search_short() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        // An unmatchable target would otherwise burn the full budget; the
        // deadline must cut it short well below the cap.
        let rep = reproduce(
            &prog,
            &run.sketch,
            "assert:never",
            &config,
            &ExploreConfig {
                max_attempts: 1_000_000,
                stop: Some(StopToken::after(Duration::from_millis(100))),
                ..ExploreConfig::default()
            },
        );
        assert!(!rep.reproduced);
        assert!(rep.stopped);
        assert!(rep.attempts < 1_000_000);
        assert_eq!(rep.attempts as usize, rep.history.len());
    }

    #[test]
    fn stop_token_does_not_perturb_a_completed_search() {
        // A token that never trips must leave the reproduction identical
        // to a token-free run, plan for plan.
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        let base = reproduce(
            &prog,
            &run.sketch,
            "assert:never",
            &config,
            &ExploreConfig {
                max_attempts: 20,
                ..ExploreConfig::default()
            },
        );
        let with_token = reproduce(
            &prog,
            &run.sketch,
            "assert:never",
            &config,
            &ExploreConfig {
                max_attempts: 20,
                stop: Some(StopToken::new()),
                ..ExploreConfig::default()
            },
        );
        assert!(!with_token.stopped);
        let plans = |rep: &Reproduction| -> Vec<String> {
            rep.history.iter().map(|h| h.plan.clone()).collect()
        };
        assert_eq!(plans(&base), plans(&with_token));
    }

    #[test]
    fn external_pool_reuse_matches_owned_pool_results() {
        let prog = atomicity_program();
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        let explore = ExploreConfig::default();
        let owned = reproduce(
            &prog,
            &run.sketch,
            &run.sketch.meta.failure_signature,
            &config,
            &explore,
        );
        // One warm pool serving several reproductions back to back — the
        // daemon's steady state. Results must be byte-identical and the
        // pool must stop spawning after the first job warms it.
        let pool = VthreadPool::new(explore.pool_width);
        let mut spawned_after_first = 0;
        for round in 0..3 {
            let external = reproduce_with_oracle_and_pool(
                &prog,
                &run.sketch,
                &crate::oracle::StatusOracle::new(&run.sketch.meta.failure_signature),
                &config,
                &explore,
                Some(&pool),
            );
            assert_eq!(external.reproduced, owned.reproduced, "round {round}");
            assert_eq!(external.attempts, owned.attempts, "round {round}");
            assert_eq!(
                external.certificate.as_ref().map(Certificate::encode),
                owned.certificate.as_ref().map(Certificate::encode),
                "round {round}: certificates must be byte-identical"
            );
            match round {
                0 => spawned_after_first = pool.spawned_workers(),
                _ => assert_eq!(
                    pool.spawned_workers(),
                    spawned_after_first,
                    "warm pool must not spawn for later jobs"
                ),
            }
        }
    }
}
