//! Production-run recording: the sketch recorder and overhead accounting.
//!
//! The recorder is a `pres-tvm` [`Observer`]: it sees every applied event,
//! filters by mechanism, appends matching entries to its in-memory log, and
//! charges the virtual clock for each append — the thread-local cost of
//! formatting the entry plus the serialized cost of claiming a slot in the
//! single global order. Overhead is then measured exactly the way the paper
//! does: run the same workload natively and recorded (the observer does not
//! influence scheduling, so the interleaving is identical) and compare
//! makespans.

use crate::codec;
use crate::sketch::{Mechanism, MechanismFilter, Sketch, SketchEntry, SketchMeta, SketchOp};
use crate::program::Program;
use pres_tvm::cost::CostModel;
use pres_tvm::op::OpResult;
use pres_tvm::sched::RandomScheduler;
use pres_tvm::trace::{Event, NullObserver, Observer, ObserverCharge, TraceMode};
use pres_tvm::vm::{self, RunOutcome, VmConfig};

/// The sketch-recording observer.
#[derive(Debug)]
pub struct SketchRecorder {
    filter: MechanismFilter,
    cost: CostModel,
    entries: Vec<SketchEntry>,
    bytes: u64,
    implicit_events: u64,
}

impl SketchRecorder {
    /// A recorder for `mechanism` charging per the given cost model.
    pub fn new(mechanism: Mechanism, cost: CostModel) -> Self {
        SketchRecorder {
            filter: MechanismFilter::new(mechanism),
            cost,
            entries: Vec::new(),
            bytes: 0,
            implicit_events: 0,
        }
    }

    /// How many implicit instruction-stream events a `Compute(units)` block
    /// contains under this recorder's mechanism (see
    /// [`CostModel::units_per_implicit_access`]): a conservative binary
    /// instrumentor logs the whole instruction stream, not just the
    /// explicitly shared operations, and that is what the paper's RW/BB/
    /// FUNC overheads are made of. SYNC and SYS log nothing implicit.
    fn implicit_count(&self, units: u64) -> u64 {
        let per = match self.filter.mechanism() {
            Mechanism::Rw => self.cost.units_per_implicit_access,
            Mechanism::Bb => self.cost.units_per_implicit_bb,
            Mechanism::BbN(n) => self.cost.units_per_implicit_bb * u64::from(n.max(1)),
            Mechanism::Func => self.cost.units_per_implicit_func,
            Mechanism::Sync | Mechanism::Sys => return 0,
        };
        units / per.max(1)
    }

    /// Implicit (instruction-stream) events recorded so far.
    pub fn implicit_events(&self) -> u64 {
        self.implicit_events
    }

    /// Entries recorded so far.
    pub fn entries(&self) -> &[SketchEntry] {
        &self.entries
    }

    /// Encoded log bytes so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Finishes recording into a [`Sketch`].
    pub fn finish(self, meta: SketchMeta) -> Sketch {
        Sketch {
            mechanism: self.filter.mechanism(),
            entries: self.entries,
            meta,
        }
    }
}

impl Observer for SketchRecorder {
    fn on_event(&mut self, event: &Event) -> ObserverCharge {
        // Thread-local computation: charge the implicit instruction-stream
        // recording this mechanism performs inside the block.
        if let pres_tvm::op::Op::Compute(units) = event.op {
            let n = self.implicit_count(units);
            if n == 0 {
                return ObserverCharge::FREE;
            }
            self.implicit_events += n;
            self.bytes += n * self.cost.implicit_bytes;
            return ObserverCharge {
                thread_cost: n * self.cost.implicit_record,
                serial_cost: n * self.cost.implicit_serial,
            };
        }
        if !self.filter.record_and_note(event.tid, &event.op) {
            return ObserverCharge::FREE;
        }
        let Some(op) = SketchOp::from_op(&event.op) else {
            return ObserverCharge::FREE;
        };
        let entry = SketchEntry {
            tid: event.tid,
            op,
            result: if event.op.is_syscall() {
                event.result.clone()
            } else {
                OpResult::Unit
            },
        };
        let payload = codec::entry_size(&entry);
        self.bytes += payload;
        self.entries.push(entry);
        // Every mechanism records a single global order, so every append
        // pays the serialized slot-claim cost; the *total* serial section is
        // what differs across mechanisms (few sync ops vs. millions of
        // memory accesses), which is what produces the paper's scalability
        // split between SYNC and RW.
        let (thread_cost, serial_cost) = self.cost.record_cost(payload, true);
        ObserverCharge {
            thread_cost,
            serial_cost,
        }
    }
}

/// Everything a recorded production run yields.
#[derive(Debug)]
pub struct RecordedRun {
    /// The sketch (the only artifact that survives to diagnosis time).
    pub sketch: Sketch,
    /// The recorded run's outcome (status, time, stats).
    pub outcome: RunOutcome,
    /// The same workload run natively (no recording), for overhead math.
    pub native: RunOutcome,
    /// Encoded log size in bytes (explicit entries + implicit stream).
    pub log_bytes: u64,
    /// Implicit instruction-stream events recorded (RW/BB/FUNC mechanisms).
    pub implicit_events: u64,
}

impl RecordedRun {
    /// Recording slowdown: recorded makespan / native makespan.
    pub fn slowdown(&self) -> f64 {
        self.outcome.time.slowdown_vs(&self.native.time)
    }

    /// Recording overhead percentage, the paper's headline metric.
    pub fn overhead_pct(&self) -> f64 {
        self.outcome.time.overhead_pct_vs(&self.native.time)
    }

    /// Whether the production run failed (a bug manifested while recording).
    pub fn failed(&self) -> bool {
        self.outcome.status.is_failed()
    }
}

/// Summary row for the overhead/log-size tables.
#[derive(Debug, Clone)]
pub struct RecordingReport {
    /// Program name.
    pub program: String,
    /// Mechanism.
    pub mechanism: Mechanism,
    /// Overhead percentage vs. native.
    pub overhead_pct: f64,
    /// Slowdown factor vs. native.
    pub slowdown: f64,
    /// Explicit sketch entry count.
    pub entries: u64,
    /// Implicit instruction-stream events.
    pub implicit_events: u64,
    /// Encoded log bytes.
    pub log_bytes: u64,
    /// Native makespan (virtual units) — the run length the log amortizes
    /// over, for bytes-per-unit-time comparisons.
    pub native_makespan: u64,
}

impl RecordingReport {
    /// Builds a report row from a recorded run.
    pub fn from_run(run: &RecordedRun) -> Self {
        RecordingReport {
            program: run.sketch.meta.program.clone(),
            mechanism: run.sketch.mechanism,
            overhead_pct: run.overhead_pct(),
            slowdown: run.slowdown(),
            entries: run.sketch.entries.len() as u64,
            implicit_events: run.implicit_events,
            log_bytes: run.log_bytes,
            native_makespan: run.native.time.makespan,
        }
    }
}

/// Records one production run of `program` under `mechanism`.
///
/// Runs the workload twice with the identical scheduler seed — once
/// natively, once recorded — so the overhead comparison is exact. The
/// returned [`RecordedRun`] carries both outcomes and the sketch.
pub fn record(
    program: &dyn Program,
    mechanism: Mechanism,
    config: &VmConfig,
    seed: u64,
) -> RecordedRun {
    let native = run_once(program, config, seed, &mut NullObserver, TraceMode::Off);
    let mut recorder = SketchRecorder::new(mechanism, config.cost_model.clone());
    let outcome = run_once(program, config, seed, &mut recorder, TraceMode::Off);
    debug_assert_eq!(
        native.schedule, outcome.schedule,
        "recording must not perturb scheduling"
    );
    let log_bytes = recorder.bytes();
    let implicit_events = recorder.implicit_events();
    let meta = SketchMeta {
        program: program.name(),
        seed,
        processors: config.processors,
        total_ops: outcome.stats.total_ops,
        failure_signature: outcome
            .status
            .failure()
            .map(|f| f.signature())
            .unwrap_or_default(),
    };
    let sketch = recorder.finish(meta);
    RecordedRun {
        sketch,
        outcome,
        native,
        log_bytes,
        implicit_events,
    }
}

/// Searches production seeds until the bug manifests while recording;
/// returns the failing recorded run. This models the paper's setting: the
/// production run that exhibited the failure is the one whose sketch is
/// replayed.
pub fn record_until_failure(
    program: &dyn Program,
    mechanism: Mechanism,
    config: &VmConfig,
    seeds: impl IntoIterator<Item = u64>,
) -> Option<RecordedRun> {
    for seed in seeds {
        let run = record(program, mechanism, config, seed);
        if run.failed() {
            return Some(run);
        }
    }
    None
}

fn run_once(
    program: &dyn Program,
    config: &VmConfig,
    seed: u64,
    observer: &mut dyn Observer,
    trace_mode: TraceMode,
) -> RunOutcome {
    let mut cfg = config.clone();
    cfg.trace_mode = trace_mode;
    cfg.world = program.world();
    let body = program.root();
    vm::run(
        cfg,
        program.resources(),
        &mut RandomScheduler::new(seed),
        observer,
        move |ctx| body(ctx),
    )
}

/// Runs the program once with full tracing and no recording — used by
/// tests and the replayer's ground-truth comparisons.
pub fn run_traced(program: &dyn Program, config: &VmConfig, seed: u64) -> RunOutcome {
    run_once(
        program,
        config,
        seed,
        &mut NullObserver,
        TraceMode::Full,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ClosureProgram;
    use pres_tvm::prelude::*;

    fn compute_heavy_program() -> impl Program {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let m = spec.lock("m");
        ClosureProgram::new("compute-heavy", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                let kids: Vec<ThreadId> = (0..3)
                    .map(|i| {
                        ctx.spawn(&format!("w{i}"), move |ctx| {
                            for b in 0..40u32 {
                                ctx.bb(b);
                                // Lots of unshared work, a few shared accesses,
                                // rare sync: the scientific-app profile.
                                ctx.compute(200);
                                let v = ctx.read(x);
                                ctx.write(x, v + 1);
                                if b % 20 == 0 {
                                    ctx.with_lock(m, |ctx| {
                                        let v = ctx.read(x);
                                        ctx.write(x, v);
                                    });
                                }
                            }
                        })
                    })
                    .collect();
                for k in kids {
                    ctx.join(k);
                }
            })
        })
    }

    #[test]
    fn recording_does_not_perturb_the_schedule() {
        let prog = compute_heavy_program();
        let run = record(&prog, Mechanism::Rw, &VmConfig::default(), 3);
        assert_eq!(run.native.schedule, run.outcome.schedule);
        assert_eq!(run.native.stats, run.outcome.stats);
    }

    #[test]
    fn overhead_ordering_matches_the_paper() {
        let prog = compute_heavy_program();
        let config = VmConfig {
            processors: 8,
            ..VmConfig::default()
        };
        let overhead = |m: Mechanism| record(&prog, m, &config, 7).overhead_pct();
        let rw = overhead(Mechanism::Rw);
        let bb = overhead(Mechanism::Bb);
        let sync = overhead(Mechanism::Sync);
        let sys = overhead(Mechanism::Sys);
        assert!(rw > bb, "RW {rw} must exceed BB {bb}");
        assert!(bb >= sync, "BB {bb} must be at least SYNC {sync}");
        assert!(rw > 10.0 * sync.max(0.01), "RW {rw} vs SYNC {sync}: order-of-magnitude gap");
        assert!(sys <= bb);
    }

    #[test]
    fn sync_log_is_much_smaller_than_rw_log() {
        let prog = compute_heavy_program();
        let config = VmConfig::default();
        let rw = record(&prog, Mechanism::Rw, &config, 7);
        let sync = record(&prog, Mechanism::Sync, &config, 7);
        assert!(rw.log_bytes > 5 * sync.log_bytes);
        assert_eq!(rw.sketch.meta.program, "compute-heavy");
    }

    #[test]
    fn recorder_matches_offline_filtering() {
        let prog = compute_heavy_program();
        let config = VmConfig::default();
        let traced = run_traced(&prog, &config, 11);
        for m in Mechanism::all() {
            let online = record(&prog, m, &config, 11).sketch;
            let offline = Sketch::from_events(m, traced.trace.events());
            assert_eq!(online.entries, offline.entries, "mechanism {m}");
        }
    }

    #[test]
    fn record_until_failure_finds_a_failing_seed() {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let prog = ClosureProgram::new("racy", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    let v = ctx.read(x);
                    ctx.compute(20);
                    ctx.write(x, v + 1);
                });
                let v = ctx.read(x);
                ctx.compute(20);
                ctx.write(x, v + 1);
                ctx.join(t);
                let total = ctx.read(x);
                ctx.check(total == 2, "lost update");
            })
        });
        let config = VmConfig {
            processors: 4,
            ..VmConfig::default()
        };
        let found = record_until_failure(&prog, Mechanism::Sync, &config, 0..200);
        let run = found.expect("some seed must lose an update");
        assert!(run.failed());
        assert_eq!(run.sketch.meta.failure_signature, "assert:lost update");
    }

    #[test]
    fn bug_free_run_has_empty_signature() {
        let prog = compute_heavy_program();
        let run = record(&prog, Mechanism::Sync, &VmConfig::default(), 1);
        assert!(!run.failed());
        assert!(run.sketch.meta.failure_signature.is_empty());
    }
}
