//! Production-run recording: the sharded sketch recorder and overhead
//! accounting.
//!
//! The recorder is a `pres-tvm` [`Observer`]: it sees every applied event,
//! filters by mechanism, and appends matching entries to **per-thread
//! shards** — each vthread's segment buffer, ordered by the thread's own
//! sequence. Only operations that genuinely need a cross-thread order
//! (memory accesses, synchronization, syscalls, thread lifecycle — see
//! [`SketchOp::claims_global_slot`]) claim a slot in the serialized global
//! sequence and pay the serialized slot-claim charge; thread-local
//! function/basic-block markers are charged thread-local cost only. At
//! [`SketchRecorder::finish`] the shards are merged into the deterministic
//! canonical order (see [`crate::sketch::StampedEntry`]).
//!
//! Overhead is measured exactly the way the paper does: run the same
//! workload natively and recorded (the observer does not influence
//! scheduling, so the interleaving is identical) and compare makespans.
//! [`LegacySketchRecorder`] — the pre-sharding single-log recorder that
//! serialized every append — is retained as the equivalence baseline: it
//! must produce byte-identical canonical sketches, and the overhead gap
//! between the two recorders is the measured win of sharding (E2).

use crate::codec;
use crate::sketch::{
    canonical_order, EpochInfo, Mechanism, MechanismFilter, Sketch, SketchCheckpoint, SketchEntry,
    SketchMeta, SketchOp, StampedEntry,
};
use crate::program::Program;
use pres_tvm::cost::CostModel;
use pres_tvm::sched::RandomScheduler;
use pres_tvm::trace::{Event, NullObserver, Observer, ObserverCharge, TraceMode};
use pres_tvm::vm::{self, RunOutcome, VmConfig};

/// A recording observer that can account for and finish into a sketch —
/// implemented by the sharded [`SketchRecorder`] and the reference
/// [`LegacySketchRecorder`] so [`record`]/[`record_legacy`] share one
/// pipeline.
pub trait RecordingObserver: Observer + Sized {
    /// Encoded log bytes accumulated so far (explicit + implicit stream).
    fn bytes(&self) -> u64;
    /// Implicit instruction-stream events recorded so far.
    fn implicit_events(&self) -> u64;
    /// Finishes recording into a canonical [`Sketch`].
    fn finish(self, meta: SketchMeta) -> Sketch;
}

/// How many implicit instruction-stream events a `Compute(units)` block
/// contains under a mechanism (see
/// [`CostModel::units_per_implicit_access`]): a conservative binary
/// instrumentor logs the whole instruction stream, not just the
/// explicitly shared operations, and that is what the paper's RW/BB/
/// FUNC overheads are made of. SYNC and SYS log nothing implicit.
fn implicit_count(mechanism: Mechanism, cost: &CostModel, units: u64) -> u64 {
    let per = match mechanism {
        Mechanism::Rw => cost.units_per_implicit_access,
        Mechanism::Bb => cost.units_per_implicit_bb,
        Mechanism::BbN(n) => cost.units_per_implicit_bb * u64::from(n.max(1)),
        Mechanism::Func => cost.units_per_implicit_func,
        Mechanism::Sync | Mechanism::Sys => return 0,
    };
    units / per.max(1)
}

/// The per-event recording step shared by every production recorder.
///
/// Filtering, bucket stamping, implicit-stream accounting, and — crucially
/// — the recording *charge* live here, so the sharded recorder, the epoch
/// ring recorder, and the checkpoint verifier's charge mirror bill the
/// virtual clock identically event for event. Checkpoint snapshots embed
/// the clock; byte-identical restore verification depends on this charge
/// parity, so any new recorder must route its events through this core
/// rather than re-deriving charges.
#[derive(Debug)]
struct RecorderCore {
    filter: MechanismFilter,
    cost: CostModel,
    /// Serialized global-order slots claimed so far.
    slots: u64,
    bytes: u64,
    implicit_events: u64,
}

impl RecorderCore {
    fn new(mechanism: Mechanism, cost: CostModel) -> Self {
        RecorderCore {
            filter: MechanismFilter::new(mechanism),
            cost,
            slots: 0,
            bytes: 0,
            implicit_events: 0,
        }
    }

    /// Processes one applied event exactly as production recording does:
    /// returns the charge to bill and the stamped entry to log (if the
    /// mechanism records this event).
    fn step(&mut self, event: &Event) -> (ObserverCharge, Option<StampedEntry>) {
        // Thread-local computation: charge the implicit instruction-stream
        // recording this mechanism performs inside the block. Implicit
        // events never claim slot numbers — only under RW do they model
        // shared-memory accesses whose cross-thread order must be pinned,
        // and only then is the serialized portion charged. Under BB/BB-N/
        // FUNC the implicit stream is thread-local control flow.
        if let pres_tvm::op::Op::Compute(units) = event.op {
            let mechanism = self.filter.mechanism();
            let n = implicit_count(mechanism, &self.cost, units);
            if n == 0 {
                return (ObserverCharge::FREE, None);
            }
            self.implicit_events += n;
            self.bytes += n * self.cost.implicit_bytes;
            return (self.cost.implicit_cost(n, mechanism == Mechanism::Rw), None);
        }
        if !self.filter.record_and_note(event.tid, &event.op) {
            return (ObserverCharge::FREE, None);
        }
        let Some(op) = SketchOp::from_op(&event.op) else {
            return (ObserverCharge::FREE, None);
        };
        // Only cross-thread event classes claim a serialized slot; markers
        // are stamped with the current slot count and stay thread-local.
        let serial = op.claims_global_slot();
        let entry = SketchEntry::for_event(op, event);
        let payload = codec::entry_size(&entry);
        self.bytes += payload;
        let bucket = self.slots;
        if serial {
            self.slots += 1;
        }
        let (thread_cost, serial_cost) = self.cost.record_cost(payload, serial);
        (
            ObserverCharge {
                thread_cost,
                serial_cost,
            },
            Some(StampedEntry {
                bucket,
                serial,
                entry,
            }),
        )
    }
}

/// The sharded sketch-recording observer.
#[derive(Debug)]
pub struct SketchRecorder {
    core: RecorderCore,
    /// Per-thread segment buffers, indexed by `ThreadId::index()`. Each
    /// shard is in the thread's own program order; entries carry the
    /// bucket stamps the canonical merge sorts on.
    shards: Vec<Vec<StampedEntry>>,
}

impl SketchRecorder {
    /// A recorder for `mechanism` charging per the given cost model.
    pub fn new(mechanism: Mechanism, cost: CostModel) -> Self {
        SketchRecorder {
            core: RecorderCore::new(mechanism, cost),
            shards: Vec::new(),
        }
    }

    /// Serialized global-order slots claimed so far (the length of the
    /// serialized backbone of the log; markers live between slots).
    pub fn serialized_slots(&self) -> u64 {
        self.core.slots
    }
}

impl RecordingObserver for SketchRecorder {
    fn bytes(&self) -> u64 {
        self.core.bytes
    }

    fn implicit_events(&self) -> u64 {
        self.core.implicit_events
    }

    /// Merges the per-thread shards into the canonical order.
    ///
    /// Each shard is already nondecreasing in `(bucket, serial)` — buckets
    /// only grow over a thread's lifetime — so a linear k-way merge on
    /// `(bucket, serial, tid)` produces the canonical order directly,
    /// without re-sorting. Ties (thread-local markers of different threads
    /// in the same bucket) resolve to the lowest tid first, each thread's
    /// own sequence preserved.
    fn finish(self, meta: SketchMeta) -> Sketch {
        let total: usize = self.shards.iter().map(Vec::len).sum();
        let mut entries = Vec::with_capacity(total);
        let mut queues: Vec<_> = self
            .shards
            .into_iter()
            .map(|s| s.into_iter().peekable())
            .collect();
        loop {
            let mut best: Option<(u64, bool, usize)> = None;
            for (t, q) in queues.iter_mut().enumerate() {
                if let Some(s) = q.peek() {
                    let key = (s.bucket, s.serial, t);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
            let Some((_, _, t)) = best else { break };
            entries.push(queues[t].next().expect("peeked above").entry);
        }
        debug_assert_eq!(entries.len(), total);
        Sketch {
            mechanism: self.core.filter.mechanism(),
            entries,
            meta,
            checkpoint: None,
        }
    }
}

impl Observer for SketchRecorder {
    fn on_event(&mut self, event: &Event) -> ObserverCharge {
        let (charge, stamped) = self.core.step(event);
        if let Some(stamped) = stamped {
            let idx = stamped.entry.tid.index();
            if idx >= self.shards.len() {
                self.shards.resize_with(idx + 1, Vec::new);
            }
            self.shards[idx].push(stamped);
        }
        charge
    }
}

/// Epoch budgets and retention for the always-on ring recorder.
#[derive(Debug, Clone)]
pub struct RingConfig {
    /// Cut an epoch after this many recorded sketch entries (0 disables
    /// the entry budget).
    pub epoch_entries: u64,
    /// Cut an epoch after this much charged recording cost — thread plus
    /// serial virtual-clock units, implicit stream included (0 disables
    /// the cost budget).
    pub epoch_cost: u64,
    /// Epochs retained, counting the open one; older epochs (entries and
    /// checkpoint alike) are evicted. Must be at least 1.
    pub ring_epochs: usize,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            epoch_entries: 4096,
            epoch_cost: 0,
            ring_epochs: 4,
        }
    }
}

/// One epoch of the ring: the entries recorded since its starting
/// checkpoint, plus everything a flush needs to resume replay there.
#[derive(Debug)]
struct RingEpoch {
    /// Absolute epoch ordinal within the run.
    index: u64,
    /// Pick boundary of the starting checkpoint.
    start_picks: u64,
    /// Encoded starting snapshot; empty for the genesis epoch.
    start_snapshot: Vec<u8>,
    /// The mechanism filter's `BB-N` counters at the start boundary.
    start_bbn: Vec<u64>,
    /// Entries recorded inside the epoch, in arrival order with absolute
    /// bucket stamps.
    entries: Vec<StampedEntry>,
    /// Recording cost charged inside the epoch (for the cost budget).
    cost: u64,
}

impl RingEpoch {
    fn genesis() -> Self {
        RingEpoch {
            index: 0,
            start_picks: 0,
            start_snapshot: Vec::new(),
            start_bbn: Vec::new(),
            entries: Vec::new(),
            cost: 0,
        }
    }
}

/// The always-on recording observer: production recording into a bounded
/// epoch ring instead of an unbounded log.
///
/// Recording (filtering, stamping, charging) is byte-for-byte the
/// sharded recorder's — both route through the same [`RecorderCore`] —
/// but entries land in the current *epoch*. When the epoch exceeds its
/// budget the recorder asks the VM for a checkpoint
/// ([`Observer::checkpoint_due`]), seals the epoch at that pick
/// boundary, and opens a new one; only the last
/// [`RingConfig::ring_epochs`] epochs survive, so memory stays bounded
/// no matter how long the run. On failure, [`RecordingObserver::finish`]
/// flushes the retained window as a checkpoint-bearing [`Sketch`] whose
/// checkpoint is the oldest retained epoch's starting snapshot.
#[derive(Debug)]
pub struct RingRecorder {
    core: RecorderCore,
    config: RingConfig,
    /// Sealed epochs still retained, oldest first (at most
    /// `ring_epochs - 1`; the open epoch is the rest of the quota).
    sealed: std::collections::VecDeque<RingEpoch>,
    /// The open epoch.
    current: RingEpoch,
    next_index: u64,
    dropped_epochs: u64,
    dropped_entries: u64,
}

impl RingRecorder {
    /// A ring recorder for `mechanism`, charging per `cost`, with the
    /// given epoch budgets and retention.
    ///
    /// # Panics
    ///
    /// Panics if `config.ring_epochs` is zero.
    pub fn new(mechanism: Mechanism, cost: CostModel, config: RingConfig) -> Self {
        assert!(config.ring_epochs >= 1, "ring must retain at least one epoch");
        RingRecorder {
            core: RecorderCore::new(mechanism, cost),
            config,
            sealed: std::collections::VecDeque::new(),
            current: RingEpoch::genesis(),
            next_index: 1,
            dropped_epochs: 0,
            dropped_entries: 0,
        }
    }

    /// Epochs currently retained (sealed plus the open one). Never
    /// exceeds [`RingConfig::ring_epochs`].
    pub fn retained_epochs(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Entries currently held across the retained epochs.
    pub fn retained_entries(&self) -> usize {
        self.sealed.iter().map(|e| e.entries.len()).sum::<usize>() + self.current.entries.len()
    }

    /// Epochs evicted so far.
    pub fn dropped_epochs(&self) -> u64 {
        self.dropped_epochs
    }

    /// Entries evicted with them.
    pub fn dropped_entries(&self) -> u64 {
        self.dropped_entries
    }

    /// Seals the open epoch at the captured boundary and opens the next
    /// one, evicting beyond-quota epochs oldest-first.
    fn rotate(&mut self, snapshot: &pres_tvm::snapshot::VmSnapshot) {
        let next = RingEpoch {
            index: self.next_index,
            start_picks: snapshot.picks(),
            start_snapshot: snapshot.encode(),
            start_bbn: self.core.filter.bb_counters().to_vec(),
            entries: Vec::new(),
            cost: 0,
        };
        self.next_index += 1;
        self.sealed.push_back(std::mem::replace(&mut self.current, next));
        while self.sealed.len() > self.config.ring_epochs.saturating_sub(1) {
            let evicted = self.sealed.pop_front().expect("len checked");
            self.dropped_epochs += 1;
            self.dropped_entries += evicted.entries.len() as u64;
        }
    }
}

impl RecordingObserver for RingRecorder {
    /// Log bytes *recorded* over the whole run (evicted epochs included):
    /// the ring pays recording cost for everything, it just doesn't keep
    /// everything.
    fn bytes(&self) -> u64 {
        self.core.bytes
    }

    fn implicit_events(&self) -> u64 {
        self.core.implicit_events
    }

    /// Flushes the retained window into a checkpoint-bearing sketch.
    ///
    /// Entries of all retained epochs are concatenated and canonically
    /// ordered — bucket stamps are absolute, so when nothing was evicted
    /// (a never-rotated or wide-enough ring) the entries equal the
    /// classic full-run sketch's exactly, and the checkpoint degenerates
    /// to genesis.
    fn finish(self, meta: SketchMeta) -> Sketch {
        let oldest = self.sealed.front().unwrap_or(&self.current);
        let mut epochs: Vec<EpochInfo> = Vec::with_capacity(self.sealed.len() + 1);
        for e in self.sealed.iter().chain(std::iter::once(&self.current)) {
            epochs.push(EpochInfo {
                index: e.index,
                start_picks: e.start_picks,
                entries: e.entries.len() as u64,
            });
        }
        let checkpoint = SketchCheckpoint {
            boundary: oldest.start_picks,
            production_seed: meta.seed,
            dropped_epochs: self.dropped_epochs,
            dropped_entries: self.dropped_entries,
            bbn_counters: oldest.start_bbn.clone(),
            epochs,
            snapshot: oldest.start_snapshot.clone(),
        };
        let mut stamped: Vec<StampedEntry> = Vec::with_capacity(self.retained_entries());
        for e in self.sealed {
            stamped.extend(e.entries);
        }
        stamped.extend(self.current.entries);
        Sketch {
            mechanism: self.core.filter.mechanism(),
            entries: canonical_order(stamped),
            meta,
            checkpoint: Some(Box::new(checkpoint)),
        }
    }
}

impl Observer for RingRecorder {
    fn on_event(&mut self, event: &Event) -> ObserverCharge {
        let (charge, stamped) = self.core.step(event);
        self.current.cost += charge.thread_cost + charge.serial_cost;
        if let Some(stamped) = stamped {
            self.current.entries.push(stamped);
        }
        charge
    }

    fn checkpoint_due(&mut self) -> bool {
        let entries_full = self.config.epoch_entries > 0
            && self.current.entries.len() as u64 >= self.config.epoch_entries;
        let cost_full = self.config.epoch_cost > 0 && self.current.cost >= self.config.epoch_cost;
        entries_full || cost_full
    }

    fn on_checkpoint(&mut self, snapshot: &pres_tvm::snapshot::VmSnapshot) {
        self.rotate(snapshot);
    }
}

/// The pre-sharding reference recorder: one global log in arrival order,
/// every append paying the serialized slot-claim charge (and the implicit
/// stream paying its serialized portion under every marker mechanism).
///
/// Retained for two jobs:
///
/// * **equivalence baseline** — its `finish()` derives bucket stamps by an
///   independent walk of the arrival-order log and canonicalizes with a
///   stable sort, so sharded-vs-legacy tests compare two genuinely
///   different code paths that must agree byte-for-byte;
/// * **before/after measurement** — the overhead gap between this recorder
///   and [`SketchRecorder`] on the same run is the measured win of sharded
///   recording (E2's before/after table).
#[derive(Debug)]
pub struct LegacySketchRecorder {
    filter: MechanismFilter,
    cost: CostModel,
    /// The single global log, in arrival (VM global) order.
    log: Vec<SketchEntry>,
    bytes: u64,
    implicit_events: u64,
}

impl LegacySketchRecorder {
    /// A legacy recorder for `mechanism` charging per the given cost model.
    pub fn new(mechanism: Mechanism, cost: CostModel) -> Self {
        LegacySketchRecorder {
            filter: MechanismFilter::new(mechanism),
            cost,
            log: Vec::new(),
            bytes: 0,
            implicit_events: 0,
        }
    }
}

impl RecordingObserver for LegacySketchRecorder {
    fn bytes(&self) -> u64 {
        self.bytes
    }

    fn implicit_events(&self) -> u64 {
        self.implicit_events
    }

    /// Canonicalizes the arrival-order log: walk it once, stamping each
    /// entry with the serialized-slot count (slot-claiming entries then
    /// increment it), and stable-sort into canonical order.
    fn finish(self, meta: SketchMeta) -> Sketch {
        let mut slots = 0u64;
        let mut stamped = Vec::with_capacity(self.log.len());
        for entry in self.log {
            let serial = entry.op.claims_global_slot();
            let bucket = slots;
            if serial {
                slots += 1;
            }
            stamped.push(StampedEntry {
                bucket,
                serial,
                entry,
            });
        }
        Sketch {
            mechanism: self.filter.mechanism(),
            entries: canonical_order(stamped),
            meta,
            checkpoint: None,
        }
    }
}

impl Observer for LegacySketchRecorder {
    fn on_event(&mut self, event: &Event) -> ObserverCharge {
        if let pres_tvm::op::Op::Compute(units) = event.op {
            let n = implicit_count(self.filter.mechanism(), &self.cost, units);
            if n == 0 {
                return ObserverCharge::FREE;
            }
            self.implicit_events += n;
            self.bytes += n * self.cost.implicit_bytes;
            // Legacy behavior: the implicit stream always funnels through
            // the global order.
            return self.cost.implicit_cost(n, true);
        }
        if !self.filter.record_and_note(event.tid, &event.op) {
            return ObserverCharge::FREE;
        }
        let Some(op) = SketchOp::from_op(&event.op) else {
            return ObserverCharge::FREE;
        };
        let entry = SketchEntry::for_event(op, event);
        let payload = codec::entry_size(&entry);
        self.bytes += payload;
        self.log.push(entry);
        // Legacy behavior: every append claims a slot in the single global
        // order, markers included.
        let (thread_cost, serial_cost) = self.cost.record_cost(payload, true);
        ObserverCharge {
            thread_cost,
            serial_cost,
        }
    }
}

/// Everything a recorded production run yields.
#[derive(Debug)]
pub struct RecordedRun {
    /// The sketch (the only artifact that survives to diagnosis time).
    pub sketch: Sketch,
    /// The recorded run's outcome (status, time, stats).
    pub outcome: RunOutcome,
    /// The same workload run natively (no recording), for overhead math.
    pub native: RunOutcome,
    /// Encoded log size in bytes (explicit entries + implicit stream).
    pub log_bytes: u64,
    /// Implicit instruction-stream events recorded (RW/BB/FUNC mechanisms).
    pub implicit_events: u64,
}

impl RecordedRun {
    /// Recording slowdown: recorded makespan / native makespan.
    pub fn slowdown(&self) -> f64 {
        self.outcome.time.slowdown_vs(&self.native.time)
    }

    /// Recording overhead percentage, the paper's headline metric.
    pub fn overhead_pct(&self) -> f64 {
        self.outcome.time.overhead_pct_vs(&self.native.time)
    }

    /// Whether the production run failed (a bug manifested while recording).
    pub fn failed(&self) -> bool {
        self.outcome.status.is_failed()
    }
}

/// Summary row for the overhead/log-size tables.
#[derive(Debug, Clone)]
pub struct RecordingReport {
    /// Program name.
    pub program: String,
    /// Mechanism.
    pub mechanism: Mechanism,
    /// Overhead percentage vs. native.
    pub overhead_pct: f64,
    /// Slowdown factor vs. native.
    pub slowdown: f64,
    /// Explicit sketch entry count.
    pub entries: u64,
    /// Implicit instruction-stream events.
    pub implicit_events: u64,
    /// Encoded log bytes.
    pub log_bytes: u64,
    /// Native makespan (virtual units) — the run length the log amortizes
    /// over, for bytes-per-unit-time comparisons.
    pub native_makespan: u64,
    /// Total operations the production run executed (normalizes log bytes
    /// to bytes per 1k ops).
    pub total_ops: u64,
    /// Actual v1 (flat-stream) container bytes for this sketch.
    pub encoded_v1: u64,
    /// Actual v2 (columnar) container bytes for this sketch.
    pub encoded_v2: u64,
    /// Overhead of the pre-sharding recorder (every entry serialized) on
    /// the same run, when measured — the before/after column for E2.
    pub legacy_overhead_pct: Option<f64>,
}

impl RecordingReport {
    /// Builds a report row from a recorded run.
    pub fn from_run(run: &RecordedRun) -> Self {
        RecordingReport {
            program: run.sketch.meta.program.clone(),
            mechanism: run.sketch.mechanism,
            overhead_pct: run.overhead_pct(),
            slowdown: run.slowdown(),
            entries: run.sketch.entries.len() as u64,
            implicit_events: run.implicit_events,
            log_bytes: run.log_bytes,
            native_makespan: run.native.time.makespan,
            total_ops: run.sketch.meta.total_ops,
            encoded_v1: codec::encode_sketch_v1(&run.sketch).len() as u64,
            encoded_v2: codec::encode_sketch_v2(&run.sketch).len() as u64,
            legacy_overhead_pct: None,
        }
    }

    /// Attaches the legacy recorder's overhead measured on the same
    /// (program, seed); panics if the two runs recorded different sketches
    /// — the sharded recorder must never change *what* is recorded.
    pub fn with_legacy(mut self, legacy: &RecordedRun) -> Self {
        assert_eq!(
            legacy.sketch.meta.program, self.program,
            "legacy run is for a different program"
        );
        self.legacy_overhead_pct = Some(legacy.overhead_pct());
        self
    }

    /// Encoded v2 bytes per thousand executed operations.
    pub fn bytes_per_kop(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            self.encoded_v2 as f64 * 1000.0 / self.total_ops as f64
        }
    }
}

/// Records one production run of `program` under `mechanism` with the
/// sharded [`SketchRecorder`].
///
/// Runs the workload twice with the identical scheduler seed — once
/// natively, once recorded — so the overhead comparison is exact. The
/// returned [`RecordedRun`] carries both outcomes and the sketch.
pub fn record(
    program: &dyn Program,
    mechanism: Mechanism,
    config: &VmConfig,
    seed: u64,
) -> RecordedRun {
    record_with(
        program,
        config,
        seed,
        SketchRecorder::new(mechanism, config.cost_model.clone()),
        None,
    )
}

/// As [`record`], but hosting both the native and the recorded execution on
/// `pool`'s workers — spawn-free once the pool is warm. Recording is
/// schedule-invisible and so is the executor, so the sketch is byte-
/// identical to [`record`]'s (pinned by `tests/pool_equivalence.rs`).
pub fn record_pooled(
    program: &dyn Program,
    mechanism: Mechanism,
    config: &VmConfig,
    seed: u64,
    pool: &pres_tvm::pool::VthreadPool,
) -> RecordedRun {
    record_with(
        program,
        config,
        seed,
        SketchRecorder::new(mechanism, config.cost_model.clone()),
        Some(pool),
    )
}

/// Records one production run with the pre-sharding
/// [`LegacySketchRecorder`] — same canonical sketch, old (fully
/// serialized) overhead charges. The before/after baseline for E2.
pub fn record_legacy(
    program: &dyn Program,
    mechanism: Mechanism,
    config: &VmConfig,
    seed: u64,
) -> RecordedRun {
    record_with(
        program,
        config,
        seed,
        LegacySketchRecorder::new(mechanism, config.cost_model.clone()),
        None,
    )
}

/// Records one production run into a bounded epoch ring (always-on
/// recording) and flushes the retained window into a checkpoint-bearing
/// sketch — what a production deployment would do on failure. Same
/// native-vs-recorded overhead pipeline as [`record`].
pub fn record_ring(
    program: &dyn Program,
    mechanism: Mechanism,
    ring: RingConfig,
    config: &VmConfig,
    seed: u64,
) -> RecordedRun {
    record_with(
        program,
        config,
        seed,
        RingRecorder::new(mechanism, config.cost_model.clone(), ring),
        None,
    )
}

/// As [`record_ring`], hosted on a warm vthread pool.
pub fn record_ring_pooled(
    program: &dyn Program,
    mechanism: Mechanism,
    ring: RingConfig,
    config: &VmConfig,
    seed: u64,
    pool: &pres_tvm::pool::VthreadPool,
) -> RecordedRun {
    record_with(
        program,
        config,
        seed,
        RingRecorder::new(mechanism, config.cost_model.clone(), ring),
        Some(pool),
    )
}

/// Searches production seeds until the bug manifests while ring-recording;
/// returns the failing run with its flushed, checkpoint-bearing sketch.
pub fn record_ring_until_failure(
    program: &dyn Program,
    mechanism: Mechanism,
    ring: RingConfig,
    config: &VmConfig,
    seeds: impl IntoIterator<Item = u64>,
) -> Option<RecordedRun> {
    let pool = pres_tvm::pool::VthreadPool::new(8);
    for seed in seeds {
        let run = record_ring_pooled(program, mechanism, ring.clone(), config, seed, &pool);
        if run.failed() {
            return Some(run);
        }
    }
    None
}

/// Byte-verifies a flushed checkpoint against its program.
///
/// Re-executes the production prefix — same seed, same recording charges
/// (a [`SketchRecorder`] mirror routes events through the shared
/// [`RecorderCore`], so the virtual clock the snapshot embeds is billed
/// identically) — and compares the state snapshot the VM captures at the
/// boundary with the snapshot the checkpoint carries. A mismatch means
/// the sketch does not belong to this program/configuration, and
/// fast-forwarded replay would explore garbage; callers abort the
/// reproduction instead. Genesis checkpoints verify trivially.
///
/// The verification run is cut off at the boundary (the scheduler aborts
/// once the capture is in hand), so its cost is one prefix, not one full
/// production run, and it happens once per reproduction — not per attempt.
pub fn verify_checkpoint(
    program: &dyn Program,
    checkpoint: &crate::sketch::SketchCheckpoint,
    mechanism: Mechanism,
    config: &VmConfig,
    pool: Option<&pres_tvm::pool::VthreadPool>,
) -> Result<(), String> {
    if checkpoint.is_genesis() {
        return Ok(());
    }

    /// Counts events, mirrors production recording charges, and grabs the
    /// boundary snapshot's bytes.
    struct SnapshotProbe {
        mirror: SketchRecorder,
        boundary: u64,
        seen: u64,
        captured: Option<Vec<u8>>,
    }

    impl Observer for SnapshotProbe {
        fn on_event(&mut self, event: &Event) -> ObserverCharge {
            self.seen += 1;
            self.mirror.on_event(event)
        }

        fn checkpoint_due(&mut self) -> bool {
            self.seen == self.boundary
        }

        fn on_checkpoint(&mut self, snapshot: &pres_tvm::snapshot::VmSnapshot) {
            self.captured = Some(snapshot.encode());
        }
    }

    /// The production scheduler, cut off one pick past the boundary — by
    /// then the capture hook has fired, and the rest of the run is not
    /// needed for verification.
    struct BoundedScheduler {
        inner: RandomScheduler,
        picks_left: u64,
    }

    impl pres_tvm::sched::Scheduler for BoundedScheduler {
        fn pick(
            &mut self,
            view: &pres_tvm::sched::SchedView<'_>,
        ) -> pres_tvm::sched::Decision {
            if self.picks_left == 0 {
                return pres_tvm::sched::Decision::Abort(
                    "checkpoint boundary verified".to_string(),
                );
            }
            self.picks_left -= 1;
            self.inner.pick(view)
        }
    }

    let mut probe = SnapshotProbe {
        mirror: SketchRecorder::new(mechanism, config.cost_model.clone()),
        boundary: checkpoint.boundary,
        seen: 0,
        captured: None,
    };
    let mut sched = BoundedScheduler {
        inner: RandomScheduler::new(checkpoint.production_seed),
        picks_left: checkpoint.boundary,
    };
    let mut cfg = config.clone();
    cfg.trace_mode = TraceMode::Off;
    cfg.world = program.world();
    let body = program.root();
    match pool {
        Some(pool) => vm::run_with_pool(
            cfg,
            program.resources(),
            &mut sched,
            &mut probe,
            pool,
            move |ctx| body(ctx),
        ),
        None => vm::run(
            cfg,
            program.resources(),
            &mut sched,
            &mut probe,
            move |ctx| body(ctx),
        ),
    };
    match probe.captured {
        None => Err(format!(
            "program ended after {} events, before the checkpoint boundary {}",
            probe.seen, checkpoint.boundary
        )),
        Some(bytes) if bytes == checkpoint.snapshot => Ok(()),
        Some(_) => Err(format!(
            "snapshot mismatch at boundary {}: the sketch was not recorded \
             from this program/configuration",
            checkpoint.boundary
        )),
    }
}

fn record_with<R: RecordingObserver>(
    program: &dyn Program,
    config: &VmConfig,
    seed: u64,
    mut recorder: R,
    pool: Option<&pres_tvm::pool::VthreadPool>,
) -> RecordedRun {
    let native = run_once_on(program, config, seed, &mut NullObserver, TraceMode::Off, pool);
    let outcome = run_once_on(program, config, seed, &mut recorder, TraceMode::Off, pool);
    debug_assert_eq!(
        native.schedule, outcome.schedule,
        "recording must not perturb scheduling"
    );
    let log_bytes = recorder.bytes();
    let implicit_events = recorder.implicit_events();
    let meta = SketchMeta {
        program: program.name(),
        seed,
        processors: config.processors,
        total_ops: outcome.stats.total_ops,
        failure_signature: outcome
            .status
            .failure()
            .map(|f| f.signature())
            .unwrap_or_default(),
    };
    let sketch = recorder.finish(meta);
    RecordedRun {
        sketch,
        outcome,
        native,
        log_bytes,
        implicit_events,
    }
}

/// Searches production seeds until the bug manifests while recording;
/// returns the failing recorded run. This models the paper's setting: the
/// production run that exhibited the failure is the one whose sketch is
/// replayed.
pub fn record_until_failure(
    program: &dyn Program,
    mechanism: Mechanism,
    config: &VmConfig,
    seeds: impl IntoIterator<Item = u64>,
) -> Option<RecordedRun> {
    // A seed search is itself a hot loop (2 runs per seed, often thousands
    // of seeds): host it on one pool so only the first seed pays spawns.
    let pool = pres_tvm::pool::VthreadPool::new(8);
    for seed in seeds {
        let run = record_pooled(program, mechanism, config, seed, &pool);
        if run.failed() {
            return Some(run);
        }
    }
    None
}

fn run_once(
    program: &dyn Program,
    config: &VmConfig,
    seed: u64,
    observer: &mut dyn Observer,
    trace_mode: TraceMode,
) -> RunOutcome {
    run_once_on(program, config, seed, observer, trace_mode, None)
}

fn run_once_on(
    program: &dyn Program,
    config: &VmConfig,
    seed: u64,
    observer: &mut dyn Observer,
    trace_mode: TraceMode,
    pool: Option<&pres_tvm::pool::VthreadPool>,
) -> RunOutcome {
    let mut cfg = config.clone();
    cfg.trace_mode = trace_mode;
    cfg.world = program.world();
    let body = program.root();
    let mut sched = RandomScheduler::new(seed);
    match pool {
        Some(pool) => vm::run_with_pool(
            cfg,
            program.resources(),
            &mut sched,
            observer,
            pool,
            move |ctx| body(ctx),
        ),
        None => vm::run(
            cfg,
            program.resources(),
            &mut sched,
            observer,
            move |ctx| body(ctx),
        ),
    }
}

/// Runs the program once with full tracing and no recording — used by
/// tests and the replayer's ground-truth comparisons.
pub fn run_traced(program: &dyn Program, config: &VmConfig, seed: u64) -> RunOutcome {
    run_once(
        program,
        config,
        seed,
        &mut NullObserver,
        TraceMode::Full,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ClosureProgram;
    use pres_tvm::prelude::*;

    fn compute_heavy_program() -> impl Program {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let m = spec.lock("m");
        ClosureProgram::new("compute-heavy", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                let kids: Vec<ThreadId> = (0..3)
                    .map(|i| {
                        ctx.spawn(&format!("w{i}"), move |ctx| {
                            for b in 0..40u32 {
                                ctx.bb(b);
                                // Lots of unshared work, a few shared accesses,
                                // rare sync: the scientific-app profile.
                                ctx.compute(200);
                                let v = ctx.read(x);
                                ctx.write(x, v + 1);
                                if b % 20 == 0 {
                                    ctx.with_lock(m, |ctx| {
                                        let v = ctx.read(x);
                                        ctx.write(x, v);
                                    });
                                }
                            }
                        })
                    })
                    .collect();
                for k in kids {
                    ctx.join(k);
                }
            })
        })
    }

    /// Many threads, marker-dense loops: the profile where claiming a
    /// global slot per marker makes the serialized section the makespan
    /// floor, so the sharded/legacy split is visible in the overhead.
    fn marker_heavy_program() -> impl Program {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        ClosureProgram::new("marker-heavy", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                let kids: Vec<ThreadId> = (0..8)
                    .map(|i| {
                        ctx.spawn(&format!("w{i}"), move |ctx| {
                            for b in 0..400u32 {
                                ctx.func(b % 16);
                                ctx.bb(b);
                                ctx.compute(4);
                            }
                            let v = ctx.read(x);
                            ctx.write(x, v + 1);
                        })
                    })
                    .collect();
                for k in kids {
                    ctx.join(k);
                }
            })
        })
    }

    #[test]
    fn recording_does_not_perturb_the_schedule() {
        let prog = compute_heavy_program();
        let run = record(&prog, Mechanism::Rw, &VmConfig::default(), 3);
        assert_eq!(run.native.schedule, run.outcome.schedule);
        assert_eq!(run.native.stats, run.outcome.stats);
    }

    #[test]
    fn overhead_ordering_matches_the_paper() {
        let prog = compute_heavy_program();
        let config = VmConfig {
            processors: 8,
            ..VmConfig::default()
        };
        let overhead = |m: Mechanism| record(&prog, m, &config, 7).overhead_pct();
        let rw = overhead(Mechanism::Rw);
        let bb = overhead(Mechanism::Bb);
        let sync = overhead(Mechanism::Sync);
        let sys = overhead(Mechanism::Sys);
        assert!(rw > bb, "RW {rw} must exceed BB {bb}");
        assert!(bb >= sync, "BB {bb} must be at least SYNC {sync}");
        assert!(rw > 10.0 * sync.max(0.01), "RW {rw} vs SYNC {sync}: order-of-magnitude gap");
        assert!(sys <= bb);
    }

    #[test]
    fn sync_log_is_much_smaller_than_rw_log() {
        let prog = compute_heavy_program();
        let config = VmConfig::default();
        let rw = record(&prog, Mechanism::Rw, &config, 7);
        let sync = record(&prog, Mechanism::Sync, &config, 7);
        assert!(rw.log_bytes > 5 * sync.log_bytes);
        assert_eq!(rw.sketch.meta.program, "compute-heavy");
    }

    #[test]
    fn sharded_and_legacy_recorders_agree_exactly() {
        let prog = compute_heavy_program();
        let config = VmConfig::default();
        for m in Mechanism::all() {
            let sharded = record(&prog, m, &config, 7);
            let legacy = record_legacy(&prog, m, &config, 7);
            assert_eq!(
                sharded.sketch, legacy.sketch,
                "canonical sketches must be identical under {m}"
            );
            assert_eq!(
                crate::codec::encode_sketch(&sharded.sketch),
                crate::codec::encode_sketch(&legacy.sketch),
                "encoded logs must be byte-identical under {m}"
            );
            assert_eq!(sharded.log_bytes, legacy.log_bytes);
            assert_eq!(sharded.implicit_events, legacy.implicit_events);
        }
    }

    #[test]
    fn sharding_removes_marker_serialization_cost() {
        let prog = marker_heavy_program();
        let config = VmConfig {
            processors: 8,
            ..VmConfig::default()
        };
        for m in [Mechanism::Func, Mechanism::Bb, Mechanism::BbN(4)] {
            let sharded = record(&prog, m, &config, 7).overhead_pct();
            let legacy = record_legacy(&prog, m, &config, 7).overhead_pct();
            assert!(
                sharded < legacy,
                "{m}: sharded {sharded} must undercut legacy {legacy} at 8 cores"
            );
        }
        // SYNC and SYS record nothing thread-local, so the split changes
        // nothing: charges are identical, not merely close.
        for m in [Mechanism::Sync, Mechanism::Sys] {
            let sharded = record(&prog, m, &config, 7);
            let legacy = record_legacy(&prog, m, &config, 7);
            assert_eq!(sharded.outcome.time.makespan, legacy.outcome.time.makespan, "{m}");
        }
        // RW still serializes everything (implicit accesses included).
        let rw_sharded = record(&prog, Mechanism::Rw, &config, 7);
        let rw_legacy = record_legacy(&prog, Mechanism::Rw, &config, 7);
        assert_eq!(rw_sharded.outcome.time.makespan, rw_legacy.outcome.time.makespan);
    }

    #[test]
    fn serialized_slots_count_only_slot_claiming_entries() {
        let prog = compute_heavy_program();
        let config = VmConfig::default();
        let mut recorder = SketchRecorder::new(Mechanism::Bb, config.cost_model.clone());
        let outcome = run_once(&prog, &config, 3, &mut recorder, TraceMode::Off);
        assert!(!outcome.status.is_failed());
        let slots = recorder.serialized_slots();
        let sketch = recorder.finish(SketchMeta::default());
        let serial = sketch
            .entries
            .iter()
            .filter(|e| e.op.claims_global_slot())
            .count() as u64;
        let markers = sketch.entries.len() as u64 - serial;
        assert_eq!(slots, serial);
        assert!(markers > 0, "BB sketch must contain thread-local markers");
    }

    #[test]
    fn recorder_matches_offline_filtering() {
        let prog = compute_heavy_program();
        let config = VmConfig::default();
        let traced = run_traced(&prog, &config, 11);
        for m in Mechanism::all() {
            let online = record(&prog, m, &config, 11).sketch;
            let offline = Sketch::from_events(m, traced.trace.events());
            assert_eq!(online.entries, offline.entries, "mechanism {m}");
        }
    }

    #[test]
    fn record_until_failure_finds_a_failing_seed() {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let prog = ClosureProgram::new("racy", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    let v = ctx.read(x);
                    ctx.compute(20);
                    ctx.write(x, v + 1);
                });
                let v = ctx.read(x);
                ctx.compute(20);
                ctx.write(x, v + 1);
                ctx.join(t);
                let total = ctx.read(x);
                ctx.check(total == 2, "lost update");
            })
        });
        let config = VmConfig {
            processors: 4,
            ..VmConfig::default()
        };
        let found = record_until_failure(&prog, Mechanism::Sync, &config, 0..200);
        let run = found.expect("some seed must lose an update");
        assert!(run.failed());
        assert_eq!(run.sketch.meta.failure_signature, "assert:lost update");
    }

    /// Serial (slot-claiming) ops of a sketch, for window/suffix checks.
    fn serial_ops(s: &Sketch) -> Vec<&SketchEntry> {
        s.entries
            .iter()
            .filter(|e| e.op.claims_global_slot())
            .collect()
    }

    #[test]
    fn ring_with_full_retention_matches_classic_sketch() {
        // A ring wide enough to never evict must flush the classic
        // sketch's entries exactly, under a genesis checkpoint — Pin A's
        // foundation.
        let prog = compute_heavy_program();
        let config = VmConfig::default();
        for m in Mechanism::all() {
            let classic = record(&prog, m, &config, 7);
            let ring = record_ring(
                &prog,
                m,
                RingConfig {
                    epoch_entries: 16,
                    epoch_cost: 0,
                    ring_epochs: 100_000,
                },
                &config,
                7,
            );
            let cp = ring.sketch.checkpoint.as_deref().expect("ring flush bears a checkpoint");
            assert!(cp.is_genesis(), "{m}: nothing evicted, checkpoint must be genesis");
            assert_eq!(cp.dropped_epochs, 0);
            assert_eq!(cp.dropped_entries, 0);
            assert!(cp.snapshot.is_empty());
            assert!(cp.bbn_counters.is_empty());
            assert_eq!(classic.sketch.entries, ring.sketch.entries, "{m}");
            assert_eq!(classic.sketch.meta, ring.sketch.meta, "{m}");
            assert_eq!(cp.retained_entries(), ring.sketch.entries.len() as u64);
        }
    }

    #[test]
    fn ring_charges_exactly_like_the_classic_recorder() {
        // Charge parity: ring recording must bill the virtual clock the
        // way production recording does, whatever the budgets — the
        // checkpoint snapshots embed the clock, so verification depends
        // on it.
        let prog = marker_heavy_program();
        let config = VmConfig {
            processors: 8,
            ..VmConfig::default()
        };
        for m in Mechanism::all() {
            let classic = record(&prog, m, &config, 9);
            let ring = record_ring(&prog, m, RingConfig::default(), &config, 9);
            assert_eq!(classic.outcome.schedule, ring.outcome.schedule, "{m}");
            assert_eq!(
                classic.outcome.time.makespan, ring.outcome.time.makespan,
                "{m}: ring charges diverged from production recording"
            );
            assert_eq!(classic.log_bytes, ring.log_bytes, "{m}");
            assert_eq!(classic.implicit_events, ring.implicit_events, "{m}");
        }
    }

    #[test]
    fn rotated_ring_flushes_the_retained_suffix() {
        let prog = marker_heavy_program();
        let config = VmConfig::default();
        let ring_cfg = RingConfig {
            epoch_entries: 300,
            epoch_cost: 0,
            ring_epochs: 3,
        };
        let classic = record(&prog, Mechanism::Bb, &config, 5);
        let ring = record_ring(&prog, Mechanism::Bb, ring_cfg, &config, 5);
        let cp = ring.sketch.checkpoint.as_deref().expect("checkpoint");
        assert!(cp.dropped_epochs > 0, "budgets must force eviction here");
        assert!(cp.boundary > 0);
        assert_eq!(
            cp.dropped_entries + ring.sketch.entries.len() as u64,
            classic.sketch.entries.len() as u64,
            "dropped + retained must cover the classic log"
        );
        // The epoch directory is contiguous and covers the window.
        for (a, b) in cp.epochs.iter().zip(cp.epochs.iter().skip(1)) {
            assert_eq!(a.index + 1, b.index);
            assert!(a.start_picks <= b.start_picks);
        }
        assert_eq!(cp.epochs.first().expect("nonempty").start_picks, cp.boundary);
        assert_eq!(cp.retained_entries(), ring.sketch.entries.len() as u64);
        // The boundary snapshot is a decodable VM snapshot at the boundary.
        let snap = pres_tvm::snapshot::VmSnapshot::decode(&cp.snapshot).expect("valid snapshot");
        assert_eq!(snap.picks(), cp.boundary);
        // Slot-claiming entries have unique ascending buckets, so the
        // retained window's serial backbone is exactly a suffix of the
        // classic log's.
        let classic_serial = serial_ops(&classic.sketch);
        let ring_serial = serial_ops(&ring.sketch);
        assert!(!ring_serial.is_empty());
        assert_eq!(
            &classic_serial[classic_serial.len() - ring_serial.len()..],
            &ring_serial[..],
            "retained serial entries must be the classic log's suffix"
        );
    }

    #[test]
    fn ring_memory_stays_bounded_throughout_the_run() {
        // Wrap the ring recorder in an observer that checks the retention
        // invariant after every single event — not just at flush time.
        struct BoundsChecked {
            inner: RingRecorder,
            cap_epochs: usize,
            cap_entries: usize,
        }
        impl Observer for BoundsChecked {
            fn on_event(&mut self, event: &Event) -> ObserverCharge {
                let charge = self.inner.on_event(event);
                assert!(self.inner.retained_epochs() <= self.cap_epochs);
                assert!(self.inner.retained_entries() <= self.cap_entries);
                charge
            }
            fn checkpoint_due(&mut self) -> bool {
                self.inner.checkpoint_due()
            }
            fn on_checkpoint(&mut self, snapshot: &pres_tvm::snapshot::VmSnapshot) {
                self.inner.on_checkpoint(snapshot);
            }
        }
        let prog = marker_heavy_program();
        let config = VmConfig::default();
        let (k, budget) = (2usize, 100u64);
        let mut obs = BoundsChecked {
            inner: RingRecorder::new(
                Mechanism::Bb,
                config.cost_model.clone(),
                RingConfig {
                    epoch_entries: budget,
                    epoch_cost: 0,
                    ring_epochs: k,
                },
            ),
            cap_epochs: k,
            cap_entries: k * budget as usize,
        };
        let outcome = run_once(&prog, &config, 3, &mut obs, TraceMode::Off);
        assert!(!outcome.status.is_failed());
        assert!(obs.inner.dropped_epochs() > 0, "run must overflow a 2-epoch ring");
        let sketch = obs.inner.finish(SketchMeta::default());
        assert!(sketch.entries.len() <= k * budget as usize);
    }

    #[test]
    fn cost_budget_cuts_epochs_too() {
        let prog = compute_heavy_program();
        let config = VmConfig::default();
        let ring = record_ring(
            &prog,
            Mechanism::Rw,
            RingConfig {
                epoch_entries: 0,
                epoch_cost: 2_000,
                ring_epochs: 2,
            },
            &config,
            7,
        );
        let cp = ring.sketch.checkpoint.as_deref().expect("checkpoint");
        assert!(
            cp.dropped_epochs > 0 || cp.epochs.len() > 1,
            "cost budget must have sealed at least one epoch"
        );
    }

    #[test]
    fn disabled_budgets_never_rotate() {
        let prog = compute_heavy_program();
        let config = VmConfig::default();
        let ring = record_ring(
            &prog,
            Mechanism::Sync,
            RingConfig {
                epoch_entries: 0,
                epoch_cost: 0,
                ring_epochs: 1,
            },
            &config,
            7,
        );
        let cp = ring.sketch.checkpoint.as_deref().expect("checkpoint");
        assert!(cp.is_genesis());
        assert_eq!(cp.epochs.len(), 1);
        let classic = record(&prog, Mechanism::Sync, &config, 7);
        assert_eq!(classic.sketch.entries, ring.sketch.entries);
    }

    #[test]
    fn bbn_counters_travel_with_the_checkpoint() {
        let prog = marker_heavy_program();
        let config = VmConfig::default();
        let ring = record_ring(
            &prog,
            Mechanism::BbN(4),
            RingConfig {
                epoch_entries: 64,
                epoch_cost: 0,
                ring_epochs: 2,
            },
            &config,
            5,
        );
        let cp = ring.sketch.checkpoint.as_deref().expect("checkpoint");
        assert!(cp.boundary > 0, "marker-heavy run must rotate a 2x64 ring");
        assert!(
            cp.bbn_counters.iter().any(|&c| c > 0),
            "BB-N sampling counters must be snapshotted at the boundary"
        );
    }

    #[test]
    fn ring_flush_round_trips_through_the_codec() {
        let prog = marker_heavy_program();
        let config = VmConfig::default();
        let ring = record_ring(
            &prog,
            Mechanism::Bb,
            RingConfig {
                epoch_entries: 300,
                epoch_cost: 0,
                ring_epochs: 3,
            },
            &config,
            5,
        );
        assert!(ring.sketch.checkpoint.is_some());
        let encoded = crate::codec::encode_sketch(&ring.sketch);
        assert_eq!(crate::codec::container_version(&encoded).unwrap(), 3);
        let decoded = crate::codec::decode_sketch(&encoded).unwrap();
        assert_eq!(decoded, ring.sketch);
    }

    #[test]
    fn record_ring_until_failure_flushes_on_the_failing_seed() {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let prog = ClosureProgram::new("racy", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    let v = ctx.read(x);
                    ctx.compute(20);
                    ctx.write(x, v + 1);
                });
                let v = ctx.read(x);
                ctx.compute(20);
                ctx.write(x, v + 1);
                ctx.join(t);
                let total = ctx.read(x);
                ctx.check(total == 2, "lost update");
            })
        });
        let config = VmConfig {
            processors: 4,
            ..VmConfig::default()
        };
        let found =
            record_ring_until_failure(&prog, Mechanism::Sync, RingConfig::default(), &config, 0..200);
        let run = found.expect("some seed must lose an update");
        assert!(run.failed());
        assert_eq!(run.sketch.meta.failure_signature, "assert:lost update");
        assert!(run.sketch.checkpoint.is_some());
    }

    #[test]
    fn bug_free_run_has_empty_signature() {
        let prog = compute_heavy_program();
        let run = record(&prog, Mechanism::Sync, &VmConfig::default(), 1);
        assert!(!run.failed());
        assert!(run.sketch.meta.failure_signature.is_empty());
    }
}
