//! Feedback generation from unsuccessful replay attempts.
//!
//! This is the component the paper's evaluation singles out as *critical*:
//! a failed attempt is not wasted — its full trace (cheap to capture at
//! diagnosis time) is analysed for the ordering decisions the sketch left
//! open, and each such decision becomes a *flip candidate* for the next
//! attempt:
//!
//! * **racing memory-access pairs** found by happens-before analysis
//!   (`pres-race`), deduplicated to one representative per static race;
//! * **contended lock-acquisition pairs** — consecutive acquisitions of the
//!   same lock by different threads — which is how lock-order bugs
//!   (deadlocks) are explored under sketches that do not record
//!   synchronization.
//!
//! Candidates are ranked: pairs on locations that also violate the lockset
//! discipline come first (an unprotected location is the likelier root
//! cause), then later-occurring pairs before earlier ones (the failure, had
//! it manifested, would have been near the end of the recorded prefix).

use crate::replay::{ActionKey, ActionObj, OrderConstraint};
use pres_race::hb::{dedup_static, HbDetector};
use pres_race::lockset::LocksetDetector;
use pres_tvm::ids::ThreadId;
use pres_tvm::op::Op;
use pres_tvm::trace::{Event, Observer, ObserverCharge, Trace};
use std::collections::{BTreeMap, BTreeSet};

/// A flip candidate extracted from a failed attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlipCandidate {
    /// The constraint to install for the next attempt (the observed order,
    /// reversed).
    pub constraint: OrderConstraint,
    /// Global sequence of the later of the two observed actions — the
    /// recency used for ranking.
    pub gseq: u64,
    /// Whether the object also violates the lockset discipline.
    pub lockset_flagged: bool,
}

/// How flip candidates are ordered before the explorer consumes them.
/// The default is the full PRES heuristic; the alternatives exist for the
/// ablation study (experiment E9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ranking {
    /// Lockset-flagged locations first, then most recent first (default).
    LocksetThenRecency,
    /// Most recent first, ignoring lockset analysis.
    RecencyOnly,
    /// Earliest first (the anti-heuristic: the failure was near the end).
    Oldest,
}

impl Ranking {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Ranking::LocksetThenRecency => "lockset+recency",
            Ranking::RecencyOnly => "recency",
            Ranking::Oldest => "oldest-first",
        }
    }
}

/// Extracts and ranks flip candidates from an attempt trace.
///
/// Returns candidates in **descending priority** (try the first one first).
pub fn candidates(trace: &Trace) -> Vec<FlipCandidate> {
    candidates_in(trace.events())
}

/// As [`candidates`], with an explicit ranking policy.
pub fn candidates_ranked(trace: &Trace, ranking: Ranking) -> Vec<FlipCandidate> {
    candidates_ranked_in(trace.events(), ranking)
}

/// As [`candidates_ranked`], over an event slice — e.g. the post-boundary
/// window of a fast-forwarded attempt, whose prefix is production history
/// rather than attempt behavior.
pub fn candidates_ranked_in(events: &[Event], ranking: Ranking) -> Vec<FlipCandidate> {
    let mut out = candidates_in(events);
    match ranking {
        Ranking::LocksetThenRecency => {}
        Ranking::RecencyOnly => out.sort_by_key(|a| std::cmp::Reverse(a.gseq)),
        Ranking::Oldest => out.sort_by_key(|a| a.gseq),
    }
    out
}

/// As [`candidates`], over an event slice (e.g. a failure prefix).
pub fn candidates_in(events: &[Event]) -> Vec<FlipCandidate> {
    let mut ext = StreamingExtractor::new();
    for e in events {
        ext.observe(e);
    }
    ext.finish()
}

/// A contended lock-acquisition pair observed in the event stream: two
/// consecutive acquisitions of the same lock by different threads.
#[derive(Debug, Clone)]
struct LockPairObs {
    lock: u32,
    first_tid: ThreadId,
    first_gseq: u64,
    second_tid: ThreadId,
    second_gseq: u64,
}

/// Streaming flip-candidate extraction: consumes events one at a time
/// (as an [`Observer`] installed on the VM, or fed from a buffered trace)
/// and assembles the ranked candidate list at the end of the run.
///
/// This maintains only bounded analysis state — the happens-before
/// detector's vector clocks and last-access tables, lockset state, the
/// per-(thread, object) occurrence counters, and the contended-lock pairs
/// seen so far — instead of buffering the full event vector. Feeding every
/// event of a trace through [`StreamingExtractor::observe`] and calling
/// [`StreamingExtractor::finish`] produces *exactly* the output of
/// [`candidates_in`] on that trace (the post-hoc path is implemented as
/// this wrapper), so replay attempts can run with
/// [`pres_tvm::trace::TraceMode::Feedback`] and still feed the explorer
/// identical candidates.
#[derive(Debug)]
pub struct StreamingExtractor {
    hb: HbDetector,
    lockset: LocksetDetector,
    /// Per-(thread, object) occurrence counters (the streaming form of
    /// [`ActionIndex::build`]).
    counters: BTreeMap<(ThreadId, ActionObj), u32>,
    /// gseq → per-(thread, object) occurrence index.
    by_gseq: BTreeMap<u64, u32>,
    /// Most recent acquisition of each lock.
    last_acquire: BTreeMap<u32, (ThreadId, u64)>,
    /// (lock, first thread, second thread) pairs already emitted.
    seen_lock_pairs: BTreeSet<(u32, ThreadId, ThreadId)>,
    /// Contended-lock observations, in stream order.
    lock_pairs: Vec<LockPairObs>,
}

impl Default for StreamingExtractor {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingExtractor {
    /// Creates an extractor with empty analysis state.
    pub fn new() -> Self {
        StreamingExtractor {
            hb: HbDetector::new(),
            lockset: LocksetDetector::new(),
            counters: BTreeMap::new(),
            by_gseq: BTreeMap::new(),
            last_acquire: BTreeMap::new(),
            seen_lock_pairs: BTreeSet::new(),
            lock_pairs: Vec::new(),
        }
    }

    /// Feeds one event through every analysis.
    pub fn observe(&mut self, e: &Event) {
        self.hb.observe(e);
        self.lockset.observe(e);
        if let Some(obj) = ActionObj::of_op(&e.op) {
            let c = self.counters.entry((e.tid, obj)).or_insert(0);
            self.by_gseq.insert(e.gseq, *c);
            *c += 1;
        }
        if let Op::LockAcquire(l) = &e.op {
            if let Some((prev_tid, prev_gseq)) = self.last_acquire.get(&l.0).copied() {
                if prev_tid != e.tid && self.seen_lock_pairs.insert((l.0, prev_tid, e.tid)) {
                    self.lock_pairs.push(LockPairObs {
                        lock: l.0,
                        first_tid: prev_tid,
                        first_gseq: prev_gseq,
                        second_tid: e.tid,
                        second_gseq: e.gseq,
                    });
                }
            }
            self.last_acquire.insert(l.0, (e.tid, e.gseq));
        }
    }

    /// The per-(thread, object) occurrence index of the action at `gseq`.
    fn index_of(&self, gseq: u64) -> Option<u32> {
        self.by_gseq.get(&gseq).copied()
    }

    /// Assembles the ranked candidate list (descending priority).
    pub fn finish(self) -> Vec<FlipCandidate> {
        let flagged = self.lockset.violating_locs();
        let mut out: Vec<FlipCandidate> = Vec::new();

        // Racing memory pairs, one representative per static race.
        for r in dedup_static(self.hb.races()) {
            let obj = ActionObj::Mem(r.loc);
            let (Some(first_idx), Some(second_idx)) =
                (self.index_of(r.first.gseq), self.index_of(r.second.gseq))
            else {
                continue;
            };
            out.push(FlipCandidate {
                constraint: OrderConstraint {
                    before: ActionKey {
                        tid: r.second.tid,
                        obj,
                        index: second_idx,
                    },
                    after: ActionKey {
                        tid: r.first.tid,
                        obj,
                        index: first_idx,
                    },
                },
                gseq: r.second.gseq,
                lockset_flagged: flagged.contains(&r.loc),
            });
        }

        // Contended lock-acquire pairs, in stream order.
        for p in &self.lock_pairs {
            let obj = ActionObj::Lock(p.lock);
            let (Some(first_idx), Some(second_idx)) =
                (self.index_of(p.first_gseq), self.index_of(p.second_gseq))
            else {
                continue;
            };
            out.push(FlipCandidate {
                constraint: OrderConstraint {
                    before: ActionKey {
                        tid: p.second_tid,
                        obj,
                        index: second_idx,
                    },
                    after: ActionKey {
                        tid: p.first_tid,
                        obj,
                        index: first_idx,
                    },
                },
                gseq: p.second_gseq,
                lockset_flagged: false,
            });
        }

        // Rank: lockset-flagged first, then most recent first.
        out.sort_by(|a, b| {
            b.lockset_flagged
                .cmp(&a.lockset_flagged)
                .then(b.gseq.cmp(&a.gseq))
        });
        out
    }

    /// As [`StreamingExtractor::finish`], with an explicit ranking policy.
    pub fn finish_ranked(self, ranking: Ranking) -> Vec<FlipCandidate> {
        let mut out = self.finish();
        match ranking {
            Ranking::LocksetThenRecency => {}
            Ranking::RecencyOnly => out.sort_by_key(|a| std::cmp::Reverse(a.gseq)),
            Ranking::Oldest => out.sort_by_key(|a| a.gseq),
        }
        out
    }
}

impl Observer for StreamingExtractor {
    fn on_event(&mut self, event: &Event) -> ObserverCharge {
        self.observe(event);
        ObserverCharge::FREE
    }
}

/// Per-(thread, object) occurrence indices for the events of a trace: the
/// bridge from trace positions (gseq) to replay-stable [`ActionKey`]s.
#[derive(Debug, Default)]
pub struct ActionIndex {
    by_gseq: BTreeMap<u64, u32>,
}

impl ActionIndex {
    /// Builds the index by scanning the events once.
    pub fn build(events: &[Event]) -> Self {
        let mut counters: BTreeMap<(ThreadId, ActionObj), u32> = BTreeMap::new();
        let mut by_gseq = BTreeMap::new();
        for e in events {
            if let Some(obj) = ActionObj::of_op(&e.op) {
                let c = counters.entry((e.tid, obj)).or_insert(0);
                by_gseq.insert(e.gseq, *c);
                *c += 1;
            }
        }
        ActionIndex { by_gseq }
    }

    /// The per-(thread, object) occurrence index of the action at `gseq`.
    pub fn index_of(&self, gseq: u64) -> Option<u32> {
        self.by_gseq.get(&gseq).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pres_tvm::prelude::*;

    fn traced(
        seed: u64,
        build: impl Fn(&mut ResourceSpec) -> Box<dyn FnOnce(&mut Ctx) + Send>,
    ) -> Trace {
        let mut spec = ResourceSpec::new();
        let body = build(&mut spec);
        let out = pres_tvm::vm::run(
            VmConfig {
                trace_mode: TraceMode::Full,
                ..VmConfig::default()
            },
            spec,
            &mut RandomScheduler::new(seed),
            &mut NullObserver,
            move |ctx| body(ctx),
        );
        out.trace
    }

    #[test]
    fn race_yields_a_flip_candidate_reversing_observed_order() {
        let trace = traced(1, |spec| {
            let x = spec.var("x", 0);
            Box::new(move |ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    ctx.write(x, 1);
                });
                ctx.write(x, 2);
                ctx.join(t);
            })
        });
        let cands = candidates(&trace);
        assert!(!cands.is_empty());
        let c = &cands[0];
        // before/after are on the same object, different threads.
        assert_eq!(c.constraint.before.obj, c.constraint.after.obj);
        assert_ne!(c.constraint.before.tid, c.constraint.after.tid);
        assert!(c.lockset_flagged, "unlocked shared var must be flagged");
    }

    #[test]
    fn lock_contention_yields_lock_flip_candidates() {
        let trace = traced(2, |spec| {
            let m = spec.lock("m");
            let x = spec.var("x", 0);
            Box::new(move |ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    ctx.with_lock(m, |ctx| {
                        let v = ctx.read(x);
                        ctx.write(x, v + 1);
                    });
                });
                ctx.with_lock(m, |ctx| {
                    let v = ctx.read(x);
                    ctx.write(x, v + 1);
                });
                ctx.join(t);
            })
        });
        let cands = candidates(&trace);
        assert!(
            cands
                .iter()
                .any(|c| matches!(c.constraint.before.obj, ActionObj::Lock(_))),
            "contended lock must yield a flip candidate: {cands:?}"
        );
        // Properly locked variable: no memory-race candidates.
        assert!(cands
            .iter()
            .all(|c| !matches!(c.constraint.before.obj, ActionObj::Mem(_))));
    }

    #[test]
    fn quiet_programs_yield_no_candidates() {
        let trace = traced(3, |spec| {
            let x = spec.var("x", 0);
            Box::new(move |ctx| {
                for i in 0..5 {
                    ctx.write(x, i);
                }
            })
        });
        assert!(candidates(&trace).is_empty());
    }

    #[test]
    fn lockset_flagged_candidates_rank_first() {
        let trace = traced(4, |spec| {
            let unlocked = spec.var("unlocked", 0);
            let m = spec.lock("m");
            let x = spec.var("x", 0);
            Box::new(move |ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    ctx.write(unlocked, 1);
                    ctx.with_lock(m, |ctx| {
                        let v = ctx.read(x);
                        ctx.write(x, v + 1);
                    });
                });
                ctx.write(unlocked, 2);
                ctx.with_lock(m, |ctx| {
                    let v = ctx.read(x);
                    ctx.write(x, v + 1);
                });
                ctx.join(t);
            })
        });
        let cands = candidates(&trace);
        assert!(!cands.is_empty());
        assert!(
            cands[0].lockset_flagged,
            "lockset-flagged candidate must rank first: {cands:?}"
        );
    }

    #[test]
    fn ranking_policies_reorder_candidates() {
        let trace = traced(6, |spec| {
            let x = spec.var("x", 0);
            let y = spec.var("y", 0);
            Box::new(move |ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    ctx.write(x, 1);
                    ctx.compute(30);
                    ctx.write(y, 1);
                });
                ctx.write(x, 2);
                ctx.compute(30);
                ctx.write(y, 2);
                ctx.join(t);
            })
        });
        let newest = candidates_ranked(&trace, Ranking::RecencyOnly);
        let oldest = candidates_ranked(&trace, Ranking::Oldest);
        assert!(newest.len() >= 2);
        assert!(newest.windows(2).all(|w| w[0].gseq >= w[1].gseq));
        assert!(oldest.windows(2).all(|w| w[0].gseq <= w[1].gseq));
        // The default ranks lockset violations first, then recency.
        let full = candidates_ranked(&trace, Ranking::LocksetThenRecency);
        assert_eq!(full.len(), newest.len());
    }

    #[test]
    fn streaming_extractor_matches_post_hoc_candidates() {
        // Feeding a trace event-by-event through the streaming extractor
        // must produce exactly the post-hoc candidate list, under every
        // ranking policy. (Programs chosen to exercise races, lock
        // contention, and the lockset flag together.)
        for seed in [1u64, 2, 4, 6] {
            let trace = traced(seed, |spec| {
                let unlocked = spec.var("unlocked", 0);
                let m = spec.lock("m");
                let x = spec.var("x", 0);
                Box::new(move |ctx| {
                    let t = ctx.spawn("w", move |ctx| {
                        ctx.write(unlocked, 1);
                        ctx.with_lock(m, |ctx| {
                            let v = ctx.read(x);
                            ctx.write(x, v + 1);
                        });
                    });
                    ctx.write(unlocked, 2);
                    ctx.with_lock(m, |ctx| {
                        let v = ctx.read(x);
                        ctx.write(x, v + 1);
                    });
                    ctx.join(t);
                })
            });
            for ranking in [Ranking::LocksetThenRecency, Ranking::RecencyOnly, Ranking::Oldest] {
                let mut ext = StreamingExtractor::new();
                for e in trace.events() {
                    ext.on_event(e);
                }
                assert_eq!(
                    ext.finish_ranked(ranking),
                    candidates_ranked(&trace, ranking),
                    "streaming and post-hoc extraction diverged (seed {seed}, {})",
                    ranking.name()
                );
            }
        }
    }

    #[test]
    fn action_index_counts_per_thread_per_object() {
        let trace = traced(5, |spec| {
            let x = spec.var("x", 0);
            let y = spec.var("y", 0);
            Box::new(move |ctx| {
                ctx.write(x, 1); // x index 0
                ctx.write(y, 1); // y index 0
                ctx.write(x, 2); // x index 1
            })
        });
        let idx = ActionIndex::build(trace.events());
        let accesses: Vec<(u64, u32)> = trace
            .events()
            .iter()
            .filter(|e| e.op.is_mem_access())
            .map(|e| (e.gseq, idx.index_of(e.gseq).unwrap()))
            .collect();
        let indices: Vec<u32> = accesses.iter().map(|(_, i)| *i).collect();
        assert_eq!(indices, vec![0, 0, 1]);
    }
}
