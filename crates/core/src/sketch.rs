//! Execution sketches: the five recording mechanisms and their filters.
//!
//! A *sketch* is the partial execution information PRES records during the
//! production run. The paper implements five sketching mechanisms spanning
//! the information/overhead spectrum, plus the prior-work RW baseline:
//!
//! | Mechanism | Records (in one global order)                        |
//! |-----------|------------------------------------------------------|
//! | `RW`      | every shared-memory access + everything below (prior work baseline: first-attempt deterministic replay) |
//! | `BB`      | every basic-block marker + everything below          |
//! | `BB-N`    | every N-th basic-block marker per thread + everything below |
//! | `FUNC`    | every function entry + everything below              |
//! | `SYNC`    | synchronization operations + `SYS`'s event classes   |
//! | `SYS`     | system calls (with results) + thread spawn/join      |
//!
//! The spectrum is *cumulative*: synchronization operations are function
//! calls and live inside basic blocks, so any mechanism that records
//! function entries or basic blocks necessarily captures synchronization
//! order too. All mechanisms record syscall results — without input
//! determinism no replay is possible at all — and thread creation order.
//! What varies is how much of the *interleaving* is pinned down, which is
//! exactly the space the partial-information replayer must search.

use pres_tvm::ids::ThreadId;
use pres_tvm::op::{MemLoc, Op, OpResult, SyscallOp};
use pres_tvm::trace::Event;
use std::borrow::Cow;
use std::fmt;

/// A sketching mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mechanism {
    /// Prior-work baseline: global order over all shared accesses.
    Rw,
    /// Synchronization-operation sketching.
    Sync,
    /// System-call sketching.
    Sys,
    /// Function-entry sketching.
    Func,
    /// Basic-block sketching.
    Bb,
    /// Every `N`-th basic block per thread (sampled BB).
    BbN(u32),
}

impl Mechanism {
    /// All mechanisms evaluated in the paper's tables, in overhead order.
    pub fn all() -> Vec<Mechanism> {
        vec![
            Mechanism::Rw,
            Mechanism::Bb,
            Mechanism::BbN(4),
            Mechanism::Func,
            Mechanism::Sys,
            Mechanism::Sync,
        ]
    }

    /// Short display name, matching the paper's labels. Borrowed for every
    /// fixed mechanism; only `BB-N` (which interpolates its period) owns an
    /// allocation — logging and bench hot paths never pay for the common
    /// cases.
    pub fn name(&self) -> Cow<'static, str> {
        match self {
            Mechanism::Rw => Cow::Borrowed("RW"),
            Mechanism::Sync => Cow::Borrowed("SYNC"),
            Mechanism::Sys => Cow::Borrowed("SYS"),
            Mechanism::Func => Cow::Borrowed("FUNC"),
            Mechanism::Bb => Cow::Borrowed("BB"),
            Mechanism::BbN(n) => Cow::Owned(format!("BB-{n}")),
        }
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mechanism::BbN(n) => write!(f, "BB-{n}"),
            other => f.write_str(match other {
                Mechanism::Rw => "RW",
                Mechanism::Sync => "SYNC",
                Mechanism::Sys => "SYS",
                Mechanism::Func => "FUNC",
                Mechanism::Bb => "BB",
                Mechanism::BbN(_) => unreachable!(),
            }),
        }
    }
}

/// Normalized operation identity stored in sketch entries.
///
/// Payloads (write values, appended bytes) are dropped — PRES records
/// *ordering*, not data — but object identities are kept so the replayer
/// can both match and detect divergence precisely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchOp {
    /// Thread began.
    Start,
    /// Thread exited.
    Exit,
    /// A shared-memory access.
    Mem {
        /// The location.
        loc: MemLoc,
        /// Whether it writes.
        write: bool,
    },
    /// A synchronization operation on an object.
    Sync {
        /// Mnemonic of the operation (stable per op kind).
        kind: SyncKind,
        /// Raw id of the object (lock/cond/barrier/sem/chan id).
        obj: u32,
    },
    /// A thread spawn.
    Spawn,
    /// A join on a specific thread.
    Join {
        /// The joined thread.
        target: u32,
    },
    /// A system call.
    Sys {
        /// Which syscall.
        kind: SysKind,
        /// Salient object id (fd / conn), 0 when not applicable.
        obj: u32,
    },
    /// A function entry.
    Func(u32),
    /// A basic-block marker.
    Bb(u32),
}

/// Synchronization-operation kinds for sketch matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum SyncKind {
    Lock,
    Unlock,
    RwRead,
    RwWrite,
    RwUnlock,
    Wait,
    Rewait,
    Signal,
    Broadcast,
    Barrier,
    BarrierResume,
    SemP,
    SemV,
    Send,
    Recv,
    ChanClose,
}

/// System-call kinds for sketch matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum SysKind {
    Open,
    Read,
    Write,
    Close,
    Accept,
    Recv,
    Send,
    NetClose,
    Clock,
    Random,
    Stdout,
}

impl SketchOp {
    /// Normalizes a VM operation, or `None` for ops that never appear in
    /// any sketch (pure computation, yields, failure announcements).
    pub fn from_op(op: &Op) -> Option<SketchOp> {
        Some(match op {
            Op::ThreadStart => SketchOp::Start,
            Op::ThreadExit => SketchOp::Exit,
            Op::Read(_) | Op::Write(..) | Op::FetchAdd(..) | Op::CompareSwap(..) | Op::Buf(..) => {
                SketchOp::Mem {
                    loc: op.mem_location().expect("mem op has a location"),
                    write: op.is_mem_write(),
                }
            }
            Op::LockAcquire(l) => SketchOp::Sync {
                kind: SyncKind::Lock,
                obj: l.0,
            },
            Op::LockRelease(l) => SketchOp::Sync {
                kind: SyncKind::Unlock,
                obj: l.0,
            },
            Op::RwAcquireRead(r) => SketchOp::Sync {
                kind: SyncKind::RwRead,
                obj: r.0,
            },
            Op::RwAcquireWrite(r) => SketchOp::Sync {
                kind: SyncKind::RwWrite,
                obj: r.0,
            },
            Op::RwRelease(r) => SketchOp::Sync {
                kind: SyncKind::RwUnlock,
                obj: r.0,
            },
            Op::CondWait(c, _) => SketchOp::Sync {
                kind: SyncKind::Wait,
                obj: c.0,
            },
            Op::CondReacquire(c, _) => SketchOp::Sync {
                kind: SyncKind::Rewait,
                obj: c.0,
            },
            Op::CondNotifyOne(c) => SketchOp::Sync {
                kind: SyncKind::Signal,
                obj: c.0,
            },
            Op::CondNotifyAll(c) => SketchOp::Sync {
                kind: SyncKind::Broadcast,
                obj: c.0,
            },
            Op::BarrierWait(b) => SketchOp::Sync {
                kind: SyncKind::Barrier,
                obj: b.0,
            },
            Op::BarrierResume(b) => SketchOp::Sync {
                kind: SyncKind::BarrierResume,
                obj: b.0,
            },
            Op::SemAcquire(s) => SketchOp::Sync {
                kind: SyncKind::SemP,
                obj: s.0,
            },
            Op::SemRelease(s) => SketchOp::Sync {
                kind: SyncKind::SemV,
                obj: s.0,
            },
            Op::ChanSend(c, _) => SketchOp::Sync {
                kind: SyncKind::Send,
                obj: c.0,
            },
            Op::ChanRecv(c) => SketchOp::Sync {
                kind: SyncKind::Recv,
                obj: c.0,
            },
            Op::ChanClose(c) => SketchOp::Sync {
                kind: SyncKind::ChanClose,
                obj: c.0,
            },
            Op::Spawn => SketchOp::Spawn,
            Op::Join(t) => SketchOp::Join { target: t.0 },
            Op::Syscall(s) => {
                let (kind, obj) = match s {
                    SyscallOp::FileOpen { .. } => (SysKind::Open, 0),
                    SyscallOp::FileRead { fd, .. } => (SysKind::Read, fd.0),
                    SyscallOp::FileWrite { fd, .. } => (SysKind::Write, fd.0),
                    SyscallOp::FileClose { fd } => (SysKind::Close, fd.0),
                    SyscallOp::NetAccept => (SysKind::Accept, 0),
                    SyscallOp::NetRecv { conn, .. } => (SysKind::Recv, conn.0),
                    SyscallOp::NetSend { conn, .. } => (SysKind::Send, conn.0),
                    SyscallOp::NetClose { conn } => (SysKind::NetClose, conn.0),
                    SyscallOp::ClockNow => (SysKind::Clock, 0),
                    SyscallOp::Random { .. } => (SysKind::Random, 0),
                    SyscallOp::StdoutWrite { .. } => (SysKind::Stdout, 0),
                };
                SketchOp::Sys { kind, obj }
            }
            Op::Func(f) => SketchOp::Func(f.0),
            Op::BasicBlock(b) => SketchOp::Bb(b.0),
            Op::Compute(_) | Op::Yield | Op::Fail(_) => return None,
        })
    }

    /// Whether this normalized op is a memory access.
    pub fn is_mem(&self) -> bool {
        matches!(self, SketchOp::Mem { .. })
    }

    /// Whether recording this op must claim a slot in the serialized global
    /// order.
    ///
    /// Cross-thread event classes — memory accesses, synchronization,
    /// syscalls, and thread lifecycle — are only useful if their *relative*
    /// order across threads is pinned down, so recording one claims the
    /// next slot of the single global sequence (and pays the serialized
    /// charge, [`pres_tvm::cost::CostModel::record_serial`]). Function and
    /// basic-block markers are thread-local control-flow breadcrumbs: each
    /// thread's marker stream is totally ordered by its own sequence
    /// number, no global slot is needed, and recording one is charged only
    /// thread-local cost. This split is what lets FUNC/BB/BB-N overhead
    /// scale with thread-local work instead of global-order contention.
    pub fn claims_global_slot(&self) -> bool {
        !matches!(self, SketchOp::Func(_) | SketchOp::Bb(_))
    }
}

/// One sketch log entry: who did what, in canonical recorded order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchEntry {
    /// The recorded thread.
    pub tid: ThreadId,
    /// The normalized operation.
    pub op: SketchOp,
    /// The syscall result, recorded for input determinism and value-based
    /// divergence detection (always [`OpResult::Unit`] for non-syscalls).
    pub result: OpResult,
}

impl SketchEntry {
    /// Builds the logged entry for an applied event whose normalized op is
    /// already known. The non-syscall path constructs [`OpResult::Unit`]
    /// directly without inspecting the event's result at all; syscall
    /// entries copy the result exactly once — the VM grants the original
    /// to the executing thread, so the log must own its copy for input
    /// determinism (a move is impossible).
    pub fn for_event(op: SketchOp, event: &Event) -> SketchEntry {
        let result = if matches!(op, SketchOp::Sys { .. }) {
            event.result.clone()
        } else {
            OpResult::Unit
        };
        SketchEntry {
            tid: event.tid,
            op,
            result,
        }
    }
}

/// A sketch entry stamped with its canonical-merge key.
///
/// The sharded recorder keeps per-thread segments and only serialized
/// entries claim slots in the global order; at `finish()` the shards are
/// merged into one deterministic **canonical order**:
///
/// * a slot-claiming entry that claimed slot `g` sorts at `(g, serial)`;
/// * a thread-local entry stamped with the slot count `c` at the moment it
///   was appended sorts at `(c, local)` — *before* the serialized entry
///   that later claims slot `c`;
/// * ties (thread-local entries of different threads between the same two
///   serialized slots) break on `(tid, per-thread seq)`.
///
/// The order is a pure function of the recorded run: every recorder (and
/// the offline [`Sketch::from_events`] filter) produces byte-identical
/// canonical sketches. For mechanisms whose entries all claim slots
/// (RW/SYNC/SYS), the canonical order *is* the recorded global order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StampedEntry {
    /// Serialized-slot bucket: the claimed slot for slot-claiming entries,
    /// or the number of slots claimed before the entry for thread-local
    /// ones.
    pub bucket: u64,
    /// Whether the entry claimed a global slot (sorts after the locals of
    /// its bucket).
    pub serial: bool,
    /// The entry itself.
    pub entry: SketchEntry,
}

/// Sorts bucket-stamped entries into canonical order and strips the
/// stamps. The sort is stable, so entries carrying the same
/// `(bucket, serial, tid)` key — necessarily one thread's consecutive
/// thread-local entries — keep their per-thread sequence order.
pub fn canonical_order(mut stamped: Vec<StampedEntry>) -> Vec<SketchEntry> {
    stamped.sort_by_key(|s| (s.bucket, s.serial, s.entry.tid.0));
    stamped.into_iter().map(|s| s.entry).collect()
}

/// The stateful filter deciding which events a mechanism records.
///
/// `BB-N` sampling keeps a per-thread basic-block counter, so the filter is
/// split into a pure query ([`MechanismFilter::would_record`]) used by the
/// replayer when *considering* a candidate, and a state update
/// ([`MechanismFilter::note_executed`]) applied once the op actually runs.
#[derive(Debug, Clone)]
pub struct MechanismFilter {
    mechanism: Mechanism,
    bb_counters: Vec<u64>,
}

impl MechanismFilter {
    /// A filter for the given mechanism.
    pub fn new(mechanism: Mechanism) -> Self {
        MechanismFilter {
            mechanism,
            bb_counters: Vec::new(),
        }
    }

    /// A filter resuming mid-run: per-thread basic-block counters restored
    /// from a checkpoint, so `BB-N` sampling picks the same blocks the
    /// production recorder would have past the boundary. Equivalent to
    /// [`MechanismFilter::new`] when `bb_counters` is empty.
    pub fn with_counters(mechanism: Mechanism, bb_counters: Vec<u64>) -> Self {
        MechanismFilter {
            mechanism,
            bb_counters,
        }
    }

    /// The mechanism.
    pub fn mechanism(&self) -> Mechanism {
        self.mechanism
    }

    /// The per-thread basic-block sampling counters (indexed by
    /// `ThreadId`; absolute counts since genesis). What a checkpoint
    /// stores so a window replayer can resume sampling in phase.
    pub fn bb_counters(&self) -> &[u64] {
        &self.bb_counters
    }

    fn bb_count(&self, tid: ThreadId) -> u64 {
        self.bb_counters.get(tid.index()).copied().unwrap_or(0)
    }

    /// Whether executing `op` on `tid` *now* would produce a sketch entry.
    pub fn would_record(&self, tid: ThreadId, op: &Op) -> bool {
        // Event classes common to every mechanism: thread lifecycle,
        // spawn/join, and system calls (results are required for replay).
        let common = matches!(
            op,
            Op::ThreadStart | Op::ThreadExit | Op::Spawn | Op::Join(_) | Op::Syscall(_)
        );
        match self.mechanism {
            Mechanism::Rw => common || op.is_mem_access() || op.is_sync(),
            Mechanism::Sync => common || op.is_sync(),
            Mechanism::Sys => common,
            // Sync operations are function calls inside basic blocks, so
            // the finer mechanisms capture them too (cumulative spectrum).
            Mechanism::Func => common || op.is_sync() || matches!(op, Op::Func(_)),
            Mechanism::Bb => common || op.is_sync() || matches!(op, Op::BasicBlock(_)),
            Mechanism::BbN(n) => {
                common
                    || op.is_sync()
                    || (matches!(op, Op::BasicBlock(_))
                        && self.bb_count(tid).is_multiple_of(u64::from(n.max(1))))
            }
        }
    }

    /// Notes that `op` executed on `tid` (advances sampling counters).
    pub fn note_executed(&mut self, tid: ThreadId, op: &Op) {
        if matches!(op, Op::BasicBlock(_)) {
            let idx = tid.index();
            if idx >= self.bb_counters.len() {
                self.bb_counters.resize(idx + 1, 0);
            }
            self.bb_counters[idx] += 1;
        }
    }

    /// Convenience: query-and-update in one call (recorder side).
    pub fn record_and_note(&mut self, tid: ThreadId, op: &Op) -> bool {
        let yes = self.would_record(tid, op);
        self.note_executed(tid, op);
        yes
    }
}

/// Directory entry for one retained epoch of a ring-flushed sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochInfo {
    /// Epoch ordinal within the production run (0-based, absolute — the
    /// first retained epoch of a rotated ring has a nonzero index).
    pub index: u64,
    /// Pick boundary at which the epoch began.
    pub start_picks: u64,
    /// Sketch entries the epoch contributed to the retained window.
    pub entries: u64,
}

/// The checkpoint a ring-flushed sketch carries: everything replay needs
/// to reconstruct the VM at the retained window's start and search only
/// the window.
///
/// Restore is *deterministic fast-forward*: replay the production
/// scheduler ([`production_seed`](Self::production_seed)) for exactly
/// [`boundary`](Self::boundary) picks; the embedded snapshot is the
/// integrity witness a re-capture at the boundary must match
/// byte-for-byte. A **genesis** checkpoint (`boundary == 0`, empty
/// snapshot, empty counters) marks a ring that never rotated: the whole
/// run is retained and replay degenerates to the classic full-sketch
/// path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchCheckpoint {
    /// Number of scheduler picks (equivalently, applied events) that
    /// precede the checkpoint.
    pub boundary: u64,
    /// Scheduler seed of the production run the fast-forward replays.
    pub production_seed: u64,
    /// Epochs evicted from the ring before the retained window.
    pub dropped_epochs: u64,
    /// Sketch entries evicted with them.
    pub dropped_entries: u64,
    /// Per-thread `BB-N` sampling counters at the boundary (absolute
    /// counts since genesis), seeding the window replayer's
    /// [`MechanismFilter`]. Empty for non-sampling mechanisms and for
    /// genesis checkpoints.
    pub bbn_counters: Vec<u64>,
    /// Directory of the retained epochs, oldest first.
    pub epochs: Vec<EpochInfo>,
    /// The encoded VM snapshot ([`pres_tvm::snapshot::VmSnapshot`]) at
    /// the boundary; empty for a genesis checkpoint.
    pub snapshot: Vec<u8>,
}

impl SketchCheckpoint {
    /// Whether this is a genesis checkpoint (nothing was evicted; replay
    /// needs no fast-forward).
    pub fn is_genesis(&self) -> bool {
        self.boundary == 0
    }

    /// Entries across the retained epoch directory.
    pub fn retained_entries(&self) -> u64 {
        self.epochs.iter().map(|e| e.entries).sum()
    }
}

/// Metadata describing the recorded production run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SketchMeta {
    /// Program name.
    pub program: String,
    /// Scheduler seed of the production run.
    pub seed: u64,
    /// Simulated processor count.
    pub processors: u32,
    /// Total operations the production run executed.
    pub total_ops: u64,
    /// The failure signature observed (empty for bug-free runs).
    pub failure_signature: String,
}

/// A recorded execution sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct Sketch {
    /// The mechanism that produced it.
    pub mechanism: Mechanism,
    /// Entries in canonical recorded order (see [`StampedEntry`]): the
    /// serialized global order over slot-claiming entries, with
    /// thread-local markers deterministically bucketed between slots.
    /// For a ring-flushed sketch these are the *retained window's*
    /// entries only, with their absolute bucket stamps.
    pub entries: Vec<SketchEntry>,
    /// Production-run metadata.
    pub meta: SketchMeta,
    /// The checkpoint of a ring-flushed sketch (`None` for classic
    /// full-run sketches).
    pub checkpoint: Option<Box<SketchCheckpoint>>,
}

impl Sketch {
    /// An empty sketch for a mechanism.
    pub fn new(mechanism: Mechanism) -> Self {
        Sketch {
            mechanism,
            entries: Vec::new(),
            meta: SketchMeta::default(),
            checkpoint: None,
        }
    }

    /// Builds a sketch by filtering a full event stream — the offline
    /// equivalent of online recording, used by tests to cross-validate the
    /// recorder. Emits the same canonical order as the sharded recorder:
    /// slot-claiming entries in their recorded global order, thread-local
    /// markers bucketed between the slots they were recorded between (see
    /// [`StampedEntry`]).
    pub fn from_events(mechanism: Mechanism, events: &[Event]) -> Self {
        let mut filter = MechanismFilter::new(mechanism);
        let mut stamped = Vec::new();
        let mut slots = 0u64;
        for e in events {
            if !filter.record_and_note(e.tid, &e.op) {
                continue;
            }
            let Some(op) = SketchOp::from_op(&e.op) else {
                continue;
            };
            let serial = op.claims_global_slot();
            let bucket = slots;
            if serial {
                slots += 1;
            }
            stamped.push(StampedEntry {
                bucket,
                serial,
                entry: SketchEntry::for_event(op, e),
            });
        }
        Sketch {
            mechanism,
            entries: canonical_order(stamped),
            meta: SketchMeta::default(),
            checkpoint: None,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sketch is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An immutable, shareable index over a sketch's entries.
///
/// Replay attempts need two derived views of the sketch: the normalized
/// per-entry [`SketchOp`] table (for divergence checks) and the per-thread
/// subsequences of entry indices (the replayer's thread queues). Both are
/// pure functions of the sketch, so the explorer builds this index **once
/// per reproduction** and every [`crate::replay::PiReplayScheduler`] —
/// across attempts and across workers — borrows it through an
/// `Arc<SketchIndex>` instead of re-cloning the sketch per attempt.
#[derive(Debug, Clone)]
pub struct SketchIndex {
    mechanism: Mechanism,
    /// Normalized op of every entry, in recorded global order.
    entries_op: Vec<SketchOp>,
    /// Per-thread lists of global entry indices, indexed by `ThreadId`.
    per_thread: Vec<Vec<usize>>,
    /// The sketch's checkpoint, if ring-flushed.
    checkpoint: Option<Box<SketchCheckpoint>>,
}

impl SketchIndex {
    /// Builds the index by scanning the sketch's entries once.
    pub fn new(sketch: &Sketch) -> Self {
        let mut per_thread: Vec<Vec<usize>> = Vec::new();
        for (i, e) in sketch.entries.iter().enumerate() {
            let idx = e.tid.index();
            if idx >= per_thread.len() {
                per_thread.resize_with(idx + 1, Vec::new);
            }
            per_thread[idx].push(i);
        }
        SketchIndex {
            mechanism: sketch.mechanism,
            entries_op: sketch.entries.iter().map(|e| e.op.clone()).collect(),
            per_thread,
            checkpoint: sketch.checkpoint.clone(),
        }
    }

    /// The recording mechanism of the indexed sketch.
    pub fn mechanism(&self) -> Mechanism {
        self.mechanism
    }

    /// The checkpoint of a ring-flushed sketch (`None` for classic
    /// sketches). Replay uses it to fast-forward to the retained window
    /// and to seed the mechanism filter's sampling counters.
    pub fn checkpoint(&self) -> Option<&SketchCheckpoint> {
        self.checkpoint.as_deref()
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries_op.len()
    }

    /// Whether the indexed sketch is empty.
    pub fn is_empty(&self) -> bool {
        self.entries_op.is_empty()
    }

    /// The normalized op of entry `i`.
    pub fn op(&self, i: usize) -> &SketchOp {
        &self.entries_op[i]
    }

    /// The per-thread subsequence of entry indices, as a cached slice
    /// (empty for threads with no recorded entries).
    pub fn thread_indices(&self, tid: ThreadId) -> &[usize] {
        self.per_thread
            .get(tid.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of thread slots the index covers (max recorded tid + 1).
    pub fn threads(&self) -> usize {
        self.per_thread.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pres_tvm::ids::{BbId, FuncId, LockId, VarId};

    fn ev(gseq: u64, tid: u32, op: Op) -> Event {
        Event {
            gseq,
            tid: ThreadId(tid),
            tseq: 0,
            op,
            result: OpResult::Unit,
        }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            ev(0, 0, Op::ThreadStart),
            ev(1, 0, Op::Read(VarId(0))),
            ev(2, 0, Op::LockAcquire(LockId(1))),
            ev(3, 0, Op::Func(FuncId(2))),
            ev(4, 0, Op::BasicBlock(BbId(3))),
            ev(5, 0, Op::BasicBlock(BbId(4))),
            ev(6, 0, Op::Syscall(SyscallOp::ClockNow)),
            ev(7, 0, Op::Compute(100)),
            ev(8, 0, Op::LockRelease(LockId(1))),
            ev(9, 0, Op::ThreadExit),
        ]
    }

    #[test]
    fn mechanism_names() {
        assert_eq!(Mechanism::Rw.name(), "RW");
        assert_eq!(Mechanism::Sync.name(), "SYNC");
        assert_eq!(Mechanism::BbN(8).name(), "BB-8");
        assert_eq!(Mechanism::BbN(8).to_string(), "BB-8");
    }

    #[test]
    fn sync_sketch_keeps_sync_and_common_only() {
        let s = Sketch::from_events(Mechanism::Sync, &sample_events());
        let kinds: Vec<&SketchOp> = s.entries.iter().map(|e| &e.op).collect();
        assert!(kinds.iter().any(|k| matches!(k, SketchOp::Sync { kind: SyncKind::Lock, obj: 1 })));
        assert!(kinds.iter().all(|k| !k.is_mem()));
        assert!(kinds.iter().all(|k| !matches!(k, SketchOp::Bb(_) | SketchOp::Func(_))));
        // Syscall and lifecycle are kept.
        assert!(kinds.iter().any(|k| matches!(k, SketchOp::Sys { .. })));
        assert!(kinds.iter().any(|k| matches!(k, SketchOp::Start)));
    }

    #[test]
    fn rw_sketch_is_a_superset_of_sync_sketch() {
        let rw = Sketch::from_events(Mechanism::Rw, &sample_events());
        let sync = Sketch::from_events(Mechanism::Sync, &sample_events());
        // Every SYNC entry appears in RW, in order.
        let mut it = rw.entries.iter();
        for se in &sync.entries {
            assert!(
                it.any(|re| re == se),
                "SYNC entry {se:?} missing from RW sketch"
            );
        }
        assert!(rw.len() > sync.len());
    }

    #[test]
    fn sys_sketch_keeps_only_syscalls_and_lifecycle() {
        let s = Sketch::from_events(Mechanism::Sys, &sample_events());
        assert_eq!(s.len(), 3); // start, clock, exit
    }

    #[test]
    fn func_and_bb_sketches() {
        let f = Sketch::from_events(Mechanism::Func, &sample_events());
        assert!(f.entries.iter().any(|e| matches!(e.op, SketchOp::Func(2))));
        assert!(f.entries.iter().all(|e| !matches!(e.op, SketchOp::Bb(_))));
        let b = Sketch::from_events(Mechanism::Bb, &sample_events());
        assert_eq!(
            b.entries.iter().filter(|e| matches!(e.op, SketchOp::Bb(_))).count(),
            2
        );
    }

    #[test]
    fn bbn_samples_every_nth_block_per_thread() {
        let mut events = vec![ev(0, 0, Op::ThreadStart)];
        for i in 0..10 {
            events.push(ev(1 + i, 0, Op::BasicBlock(BbId(i as u32))));
        }
        let s = Sketch::from_events(Mechanism::BbN(4), &events);
        let bbs: Vec<u32> = s
            .entries
            .iter()
            .filter_map(|e| match e.op {
                SketchOp::Bb(id) => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(bbs, vec![0, 4, 8]);
    }

    #[test]
    fn bbn_counters_are_per_thread() {
        let events = vec![
            ev(0, 0, Op::BasicBlock(BbId(0))),
            ev(1, 1, Op::BasicBlock(BbId(10))),
            ev(2, 0, Op::BasicBlock(BbId(1))),
            ev(3, 1, Op::BasicBlock(BbId(11))),
        ];
        let s = Sketch::from_events(Mechanism::BbN(2), &events);
        let bbs: Vec<u32> = s
            .entries
            .iter()
            .filter_map(|e| match e.op {
                SketchOp::Bb(id) => Some(id),
                _ => None,
            })
            .collect();
        // Each thread's first block is its 0th — both sampled.
        assert_eq!(bbs, vec![0, 10]);
    }

    #[test]
    fn filter_split_query_and_update_agree_with_combined() {
        let ops = vec![
            Op::BasicBlock(BbId(0)),
            Op::BasicBlock(BbId(1)),
            Op::BasicBlock(BbId(2)),
            Op::BasicBlock(BbId(3)),
        ];
        let mut combined = MechanismFilter::new(Mechanism::BbN(2));
        let mut split = MechanismFilter::new(Mechanism::BbN(2));
        for op in &ops {
            let a = combined.record_and_note(ThreadId(0), op);
            let b = split.would_record(ThreadId(0), op);
            split.note_executed(ThreadId(0), op);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn syscall_results_are_kept_only_for_syscalls() {
        let events = vec![
            Event {
                gseq: 0,
                tid: ThreadId(0),
                tseq: 0,
                op: Op::Read(VarId(0)),
                result: OpResult::Value(9),
            },
            Event {
                gseq: 1,
                tid: ThreadId(0),
                tseq: 1,
                op: Op::Syscall(SyscallOp::ClockNow),
                result: OpResult::Value(42),
            },
        ];
        let s = Sketch::from_events(Mechanism::Rw, &events);
        assert_eq!(s.entries[0].result, OpResult::Unit);
        assert_eq!(s.entries[1].result, OpResult::Value(42));
    }

    #[test]
    fn thread_indices_partition_the_sketch() {
        let events = vec![
            ev(0, 0, Op::LockAcquire(LockId(0))),
            ev(1, 1, Op::LockAcquire(LockId(1))),
            ev(2, 0, Op::LockRelease(LockId(0))),
        ];
        let s = Sketch::from_events(Mechanism::Sync, &events);
        let index = SketchIndex::new(&s);
        assert_eq!(index.thread_indices(ThreadId(0)), &[0, 2]);
        assert_eq!(index.thread_indices(ThreadId(1)), &[1]);
    }

    #[test]
    fn only_markers_skip_the_global_slot() {
        assert!(!SketchOp::Func(3).claims_global_slot());
        assert!(!SketchOp::Bb(9).claims_global_slot());
        for op in [
            SketchOp::Start,
            SketchOp::Exit,
            SketchOp::Spawn,
            SketchOp::Join { target: 1 },
            SketchOp::Mem {
                loc: MemLoc::Var(VarId(0)),
                write: false,
            },
            SketchOp::Sync {
                kind: SyncKind::Lock,
                obj: 0,
            },
            SketchOp::Sys {
                kind: SysKind::Clock,
                obj: 0,
            },
        ] {
            assert!(op.claims_global_slot(), "{op:?} must claim a slot");
        }
    }

    #[test]
    fn canonical_order_buckets_markers_before_their_slot() {
        // Thread 1's marker was recorded after slot 0 was claimed and
        // before slot 1; canonically it sorts between the two serialized
        // entries regardless of its raw arrival position.
        let events = vec![
            ev(0, 0, Op::LockAcquire(LockId(0))),
            ev(1, 1, Op::BasicBlock(BbId(7))),
            ev(2, 1, Op::BasicBlock(BbId(8))),
            ev(3, 0, Op::LockRelease(LockId(0))),
        ];
        let s = Sketch::from_events(Mechanism::Bb, &events);
        let ops: Vec<&SketchOp> = s.entries.iter().map(|e| &e.op).collect();
        assert!(matches!(ops[0], SketchOp::Sync { kind: SyncKind::Lock, .. }));
        assert_eq!(ops[1], &SketchOp::Bb(7));
        assert_eq!(ops[2], &SketchOp::Bb(8));
        assert!(matches!(ops[3], SketchOp::Sync { kind: SyncKind::Unlock, .. }));
    }

    #[test]
    fn canonical_order_ties_break_on_tid_then_seq() {
        // Two threads emit markers inside the same bucket (no serialized
        // entry between them): canonical order groups by tid, preserving
        // each thread's own sequence.
        let events = vec![
            ev(0, 2, Op::BasicBlock(BbId(20))),
            ev(1, 1, Op::BasicBlock(BbId(10))),
            ev(2, 2, Op::BasicBlock(BbId(21))),
            ev(3, 1, Op::BasicBlock(BbId(11))),
        ];
        let s = Sketch::from_events(Mechanism::Bb, &events);
        let bbs: Vec<u32> = s
            .entries
            .iter()
            .filter_map(|e| match e.op {
                SketchOp::Bb(id) => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(bbs, vec![10, 11, 20, 21]);
    }

    #[test]
    fn all_serial_mechanisms_keep_the_recorded_global_order() {
        let s = Sketch::from_events(Mechanism::Sync, &sample_events());
        // Every SYNC entry claims a slot, so canonical order == gseq order.
        let kinds: Vec<&SketchOp> = s.entries.iter().map(|e| &e.op).collect();
        assert!(matches!(kinds[0], SketchOp::Start));
        assert!(matches!(kinds[1], SketchOp::Sync { kind: SyncKind::Lock, .. }));
        assert!(matches!(kinds[2], SketchOp::Sys { .. }));
        assert!(matches!(kinds[3], SketchOp::Sync { kind: SyncKind::Unlock, .. }));
        assert!(matches!(kinds[4], SketchOp::Exit));
    }

    #[test]
    fn sketch_index_caches_ops_and_thread_lists() {
        let events = vec![
            ev(0, 0, Op::LockAcquire(LockId(0))),
            ev(1, 2, Op::LockAcquire(LockId(1))),
            ev(2, 0, Op::LockRelease(LockId(0))),
        ];
        let s = Sketch::from_events(Mechanism::Sync, &events);
        let index = SketchIndex::new(&s);
        assert_eq!(index.mechanism(), Mechanism::Sync);
        assert_eq!(index.len(), s.len());
        for (i, e) in s.entries.iter().enumerate() {
            assert_eq!(index.op(i), &e.op);
        }
        assert_eq!(index.thread_indices(ThreadId(0)), &[0, 2]);
        // tid 1 has a slot (it is below the max recorded tid) but no entries.
        assert_eq!(index.thread_indices(ThreadId(1)), &[] as &[usize]);
        assert_eq!(index.thread_indices(ThreadId(2)), &[1]);
        // Out-of-range tids serve the empty slice, not a panic.
        assert_eq!(index.thread_indices(ThreadId(9)), &[] as &[usize]);
        assert_eq!(index.threads(), 3);
    }

    #[test]
    fn fail_and_compute_never_sketch() {
        assert!(SketchOp::from_op(&Op::Fail("x".into())).is_none());
        assert!(SketchOp::from_op(&Op::Compute(5)).is_none());
        assert!(SketchOp::from_op(&Op::Yield).is_none());
    }
}
