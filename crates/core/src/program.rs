//! The program abstraction: something PRES can record and replay.
//!
//! A [`Program`] packages everything needed to re-execute a workload any
//! number of times — resource declarations, the simulated-world script, and
//! a factory for the root thread body. Determinism contract: two calls to
//! any method must describe the *same* program (same resource ids, same
//! world, same behaviour given the same scheduling), because reproduction
//! re-runs the program dozens of times under different schedules.

use pres_tvm::state::ResourceSpec;
use pres_tvm::sys::WorldConfig;
use pres_tvm::vm::Ctx;

/// A re-runnable concurrent program.
pub trait Program: Send + Sync {
    /// A stable identifier (used in sketches and reports).
    fn name(&self) -> String;

    /// The shared resources the program uses.
    fn resources(&self) -> ResourceSpec;

    /// The simulated world (initial files, scripted sessions, input seed).
    fn world(&self) -> WorldConfig;

    /// A fresh root-thread body.
    fn root(&self) -> Box<dyn FnOnce(&mut Ctx) + Send>;
}

/// A program built from closures — convenient for tests and examples.
pub struct ClosureProgram<F> {
    name: String,
    resources: ResourceSpec,
    world: WorldConfig,
    factory: F,
}

impl<F> ClosureProgram<F>
where
    F: Fn() -> Box<dyn FnOnce(&mut Ctx) + Send> + Send + Sync,
{
    /// Builds a program from parts. `factory` is called once per run and
    /// must produce equivalent bodies each time.
    pub fn new(name: &str, resources: ResourceSpec, world: WorldConfig, factory: F) -> Self {
        ClosureProgram {
            name: name.to_string(),
            resources,
            world,
            factory,
        }
    }
}

impl<F> Program for ClosureProgram<F>
where
    F: Fn() -> Box<dyn FnOnce(&mut Ctx) + Send> + Send + Sync,
{
    fn name(&self) -> String {
        self.name.clone()
    }

    fn resources(&self) -> ResourceSpec {
        self.resources.clone()
    }

    fn world(&self) -> WorldConfig {
        self.world.clone()
    }

    fn root(&self) -> Box<dyn FnOnce(&mut Ctx) + Send> {
        (self.factory)()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pres_tvm::prelude::*;

    #[test]
    fn closure_program_is_rerunnable() {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let prog = ClosureProgram::new(
            "double-increment",
            spec,
            WorldConfig::default(),
            move || {
                Box::new(move |ctx: &mut Ctx| {
                    ctx.fetch_add(x, 1);
                    ctx.fetch_add(x, 1);
                })
            },
        );
        for seed in 0..3 {
            let out = pres_tvm::vm::run(
                VmConfig::default(),
                prog.resources(),
                &mut RandomScheduler::new(seed),
                &mut NullObserver,
                {
                    let body = prog.root();
                    move |ctx| body(ctx)
                },
            );
            assert_eq!(out.status, RunStatus::Completed);
        }
        assert_eq!(prog.name(), "double-increment");
    }
}
