//! # pres-core — PRES: Probabilistic Replay with Execution Sketching
//!
//! A faithful reimplementation of the system described in
//! *"PRES: probabilistic replay with execution sketching on
//! multiprocessors"* (Park, Zhou, Xiong, Yin, Kaushik, Lee, Lu — SOSP
//! 2009), built on the deterministic multithreaded VM of [`pres_tvm`].
//!
//! Reproducing a concurrency bug requires capturing two kinds of
//! nondeterminism: inputs and thread interleaving. Recording the complete
//! interleaving (a global order over every shared-memory access — the
//! [`sketch::Mechanism::Rw`] baseline) makes replay deterministic on the
//! first attempt, but at production-run slowdowns users will not accept.
//! PRES's bet: record only a cheap *sketch* of the execution, then spend
//! effort at diagnosis time, when performance does not matter, searching
//! the unrecorded space — guided by feedback from each unsuccessful
//! attempt. Once any attempt reproduces the failure, its complete schedule
//! is minted into a [`certificate::Certificate`] that replays the bug
//! deterministically forever after.
//!
//! ## Architecture
//!
//! | Module | Role |
//! |---|---|
//! | [`sketch`] | the five sketching mechanisms (+ RW baseline) and their filters |
//! | [`codec`] | the compact binary log format (log-size accounting) |
//! | [`recorder`] | production-run recording and overhead measurement |
//! | [`replay`] | the sketch-constrained partial-information replayer |
//! | [`feedback`] | flip-candidate extraction from failed attempts |
//! | [`explore`] | the attempt loop (feedback strategy + random ablation) |
//! | [`certificate`] | deterministic reproduction certificates |
//! | [`inspect`] | human-readable diagnosis reports for failing executions |
//! | [`program`] | the re-runnable program abstraction |
//! | [`api`] | the [`api::Pres`] façade |
//!
//! See the crate-level example on [`api::Pres`] for the full
//! record → reproduce → certify pipeline.

pub mod api;
pub mod certificate;
pub mod codec;
pub mod explore;
pub mod feedback;
pub mod inspect;
pub mod oracle;
pub mod program;
pub mod recorder;
pub mod replay;
pub mod sketch;
pub mod stats;

pub use api::Pres;
pub use certificate::{Certificate, CertificateError};
pub use explore::{
    ClampDecision, ExecutorKind, ExploreConfig, FeedbackMode, Reproduction, SearchOrder,
    StopToken, Strategy, ValidationOutcome,
};
pub use oracle::{AnyOracle, FailureOracle, OutputOracle, StatusOracle};
pub use program::{ClosureProgram, Program};
pub use recorder::{
    LegacySketchRecorder, RecordedRun, RecordingObserver, RecordingReport, RingConfig,
    SketchRecorder,
};
pub use replay::{ActionKey, ActionObj, OrderConstraint, PiReplayScheduler};
pub use sketch::{Mechanism, Sketch, SketchEntry, SketchIndex, SketchMeta, SketchOp};
