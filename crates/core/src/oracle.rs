//! Failure oracles: deciding whether a replay attempt manifested the bug.
//!
//! The paper's bugs manifest in three observable ways: crashes/assertion
//! failures, hangs (deadlocks), and **wrong output** — silent corruption
//! that only an external check catches. The first two surface through
//! [`RunStatus`]; wrong output needs an oracle that compares the attempt's
//! observable outputs (stdout, network responses, files) against a known
//! good or known *bad* reference.
//!
//! [`explore::reproduce_with_oracle`](crate::explore::reproduce_with_oracle)
//! accepts any [`FailureOracle`]; the default pipeline uses
//! [`StatusOracle`], which reproduces exactly the paper's
//! crash/assertion/deadlock matching.

use pres_tvm::error::RunStatus;
use pres_tvm::vm::RunOutcome;
use std::collections::BTreeMap;

/// Decides whether an execution manifested the target failure.
pub trait FailureOracle: Send + Sync {
    /// A failure signature if the outcome counts as "the bug", else `None`.
    fn judge(&self, outcome: &RunOutcome) -> Option<String>;
}

/// The default oracle: any failed [`RunStatus`] whose signature matches
/// the production run's.
#[derive(Debug, Clone)]
pub struct StatusOracle {
    /// The production failure signature to match.
    pub target_signature: String,
}

impl StatusOracle {
    /// An oracle matching the given signature.
    pub fn new(target_signature: impl Into<String>) -> Self {
        StatusOracle {
            target_signature: target_signature.into(),
        }
    }
}

impl FailureOracle for StatusOracle {
    fn judge(&self, outcome: &RunOutcome) -> Option<String> {
        match &outcome.status {
            RunStatus::Failed(f) if f.signature() == self.target_signature => {
                Some(f.signature())
            }
            _ => None,
        }
    }
}

/// Wrong-output detection: an execution that *completes* but whose
/// observable outputs differ from a golden (bug-free) reference manifests
/// a silent-corruption bug.
#[derive(Debug, Clone)]
pub struct OutputOracle {
    expected_stdout: Option<Vec<u8>>,
    expected_conn_outputs: Option<Vec<Vec<u8>>>,
    expected_files: Option<BTreeMap<String, Vec<u8>>>,
}

impl OutputOracle {
    /// An oracle with no expectations (judges nothing until configured).
    pub fn new() -> Self {
        OutputOracle {
            expected_stdout: None,
            expected_conn_outputs: None,
            expected_files: None,
        }
    }

    /// Captures every observable output of a golden run as the reference.
    pub fn from_golden(golden: &RunOutcome) -> Self {
        OutputOracle {
            expected_stdout: Some(golden.stdout.clone()),
            expected_conn_outputs: Some(golden.conn_outputs.clone()),
            expected_files: Some(golden.files.clone()),
        }
    }

    /// Expects this exact standard output.
    pub fn expect_stdout(mut self, stdout: impl Into<Vec<u8>>) -> Self {
        self.expected_stdout = Some(stdout.into());
        self
    }

    /// Expects these exact per-connection responses.
    pub fn expect_conn_outputs(mut self, outputs: Vec<Vec<u8>>) -> Self {
        self.expected_conn_outputs = Some(outputs);
        self
    }

    /// Expects this exact final filesystem state.
    pub fn expect_files(mut self, files: BTreeMap<String, Vec<u8>>) -> Self {
        self.expected_files = Some(files);
        self
    }

    fn mismatch(&self, outcome: &RunOutcome) -> Option<&'static str> {
        if let Some(stdout) = &self.expected_stdout {
            if &outcome.stdout != stdout {
                return Some("stdout");
            }
        }
        if let Some(conns) = &self.expected_conn_outputs {
            if &outcome.conn_outputs != conns {
                return Some("network responses");
            }
        }
        if let Some(files) = &self.expected_files {
            if &outcome.files != files {
                return Some("files");
            }
        }
        None
    }
}

impl Default for OutputOracle {
    fn default() -> Self {
        Self::new()
    }
}

impl FailureOracle for OutputOracle {
    fn judge(&self, outcome: &RunOutcome) -> Option<String> {
        // Hard failures count too: a run that crashed certainly did not
        // produce the golden output.
        if let RunStatus::Failed(f) = &outcome.status {
            return Some(f.signature());
        }
        if outcome.status != RunStatus::Completed {
            return None; // aborted attempts are inconclusive
        }
        self.mismatch(outcome)
            .map(|what| format!("output-mismatch:{what}"))
    }
}

/// Judges the bug manifested if *any* member oracle says so.
pub struct AnyOracle {
    members: Vec<Box<dyn FailureOracle>>,
}

impl AnyOracle {
    /// An oracle over the given members.
    pub fn new(members: Vec<Box<dyn FailureOracle>>) -> Self {
        AnyOracle { members }
    }
}

impl FailureOracle for AnyOracle {
    fn judge(&self, outcome: &RunOutcome) -> Option<String> {
        self.members.iter().find_map(|m| m.judge(outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ClosureProgram, Program};
    use crate::recorder::run_traced;
    use pres_tvm::prelude::*;

    /// A silently-corrupting program: two workers build an output string;
    /// a racy interleaving reverses the parts, but nothing crashes.
    fn silent_program() -> impl Program {
        let mut spec = ResourceSpec::new();
        let turn = spec.var("turn", 0);
        ClosureProgram::new("silent", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                let a = ctx.spawn("a", move |ctx| {
                    // BUG: no ordering with b; whoever runs first prints
                    // first.
                    ctx.println("first");
                    ctx.write(turn, 1);
                });
                let b = ctx.spawn("b", move |ctx| {
                    ctx.println("second");
                    ctx.write(turn, 2);
                });
                ctx.join(a);
                ctx.join(b);
            })
        })
    }

    #[test]
    fn status_oracle_matches_signatures() {
        let mut spec = ResourceSpec::new();
        let _x = spec.var("x", 0);
        let prog = ClosureProgram::new("fail", spec, WorldConfig::default(), || {
            Box::new(|ctx: &mut Ctx| ctx.check(false, "boom"))
        });
        let out = run_traced(&prog, &VmConfig::default(), 0);
        assert_eq!(
            StatusOracle::new("assert:boom").judge(&out),
            Some("assert:boom".to_string())
        );
        assert_eq!(StatusOracle::new("assert:other").judge(&out), None);
    }

    #[test]
    fn output_oracle_detects_silent_reordering() {
        let prog = silent_program();
        let oracle = OutputOracle::new().expect_stdout(b"first\nsecond\n".to_vec());
        let mut good = 0;
        let mut bad = 0;
        for seed in 0..40 {
            let out = run_traced(&prog, &VmConfig::default(), seed);
            assert_eq!(out.status, RunStatus::Completed);
            match oracle.judge(&out) {
                None => good += 1,
                Some(sig) => {
                    assert_eq!(sig, "output-mismatch:stdout");
                    bad += 1;
                }
            }
        }
        assert!(good > 0, "the correct order never happened");
        assert!(bad > 0, "the silent corruption never happened");
    }

    #[test]
    fn golden_reference_captures_all_channels() {
        let prog = silent_program();
        let golden = run_traced(&prog, &VmConfig::default(), 0);
        let oracle = OutputOracle::from_golden(&golden);
        // The golden run judges itself clean.
        assert_eq!(oracle.judge(&golden), None);
        // Some other seed produces the other ordering.
        let mut found = false;
        for seed in 1..40 {
            let out = run_traced(&prog, &VmConfig::default(), seed);
            if oracle.judge(&out).is_some() {
                found = true;
                break;
            }
        }
        assert!(found);
    }

    #[test]
    fn any_oracle_takes_the_first_verdict() {
        let prog = silent_program();
        let out = run_traced(&prog, &VmConfig::default(), 0);
        let never = OutputOracle::from_golden(&out);
        let always = OutputOracle::new().expect_stdout(b"something else".to_vec());
        let combo = AnyOracle::new(vec![Box::new(never), Box::new(always)]);
        assert!(combo.judge(&out).is_some());
    }
}
