//! Sketch composition analytics: what a log is made of, byte by byte.
//!
//! The log-size experiment (E3) reports totals; this module breaks a
//! sketch down by event class — how many entries and bytes each class
//! contributes — which is how one decides *what to stop recording next*
//! when production overhead must come down. Also computes the compression
//! ratio of the varint codec against a naive fixed-width encoding.
//!
//! Also home to [`ExploreStats`]: the per-reproduction summary the CLI
//! prints after an exploration run — attempts, divergences, distinct base
//! interleavings, constraint depth.

use crate::codec;
use crate::explore::Reproduction;
use crate::sketch::{Sketch, SketchOp};
use std::collections::BTreeSet;
use std::fmt;

/// The event classes a sketch entry can belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EntryClass {
    /// Thread lifecycle (start/exit/spawn/join).
    Lifecycle,
    /// Shared-memory accesses.
    Memory,
    /// Synchronization operations.
    Sync,
    /// System calls (including recorded results).
    Syscall,
    /// Function-entry markers.
    Func,
    /// Basic-block markers.
    BasicBlock,
}

impl EntryClass {
    /// All classes, in display order.
    pub fn all() -> [EntryClass; 6] {
        [
            EntryClass::Lifecycle,
            EntryClass::Memory,
            EntryClass::Sync,
            EntryClass::Syscall,
            EntryClass::Func,
            EntryClass::BasicBlock,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            EntryClass::Lifecycle => "lifecycle",
            EntryClass::Memory => "memory",
            EntryClass::Sync => "sync",
            EntryClass::Syscall => "syscall",
            EntryClass::Func => "func",
            EntryClass::BasicBlock => "bb",
        }
    }

    /// The class of a sketch operation.
    pub fn of(op: &SketchOp) -> EntryClass {
        match op {
            SketchOp::Start | SketchOp::Exit | SketchOp::Spawn | SketchOp::Join { .. } => {
                EntryClass::Lifecycle
            }
            SketchOp::Mem { .. } => EntryClass::Memory,
            SketchOp::Sync { .. } => EntryClass::Sync,
            SketchOp::Sys { .. } => EntryClass::Syscall,
            SketchOp::Func(_) => EntryClass::Func,
            SketchOp::Bb(_) => EntryClass::BasicBlock,
        }
    }
}

/// Entry and byte counts for one class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Number of entries.
    pub entries: u64,
    /// Encoded bytes.
    pub bytes: u64,
}

/// The composition of a sketch.
#[derive(Debug, Clone)]
pub struct SketchStats {
    /// Per-class breakdown, indexed in [`EntryClass::all`] order.
    pub per_class: Vec<(EntryClass, ClassStats)>,
    /// Total encoded bytes (entries only, excluding the header).
    pub total_bytes: u64,
    /// Total entries.
    pub total_entries: u64,
    /// Bytes a naive fixed-width encoding (16 B/entry + payload) would use.
    pub naive_bytes: u64,
}

impl SketchStats {
    /// Analyses a sketch.
    pub fn of(sketch: &Sketch) -> SketchStats {
        let mut per_class: Vec<(EntryClass, ClassStats)> = EntryClass::all()
            .into_iter()
            .map(|c| (c, ClassStats::default()))
            .collect();
        let mut total_bytes = 0;
        let mut naive_bytes = 0;
        for entry in &sketch.entries {
            let class = EntryClass::of(&entry.op);
            let size = codec::entry_size(entry);
            let slot = per_class
                .iter_mut()
                .find(|(c, _)| *c == class)
                .expect("all classes present");
            slot.1.entries += 1;
            slot.1.bytes += size;
            total_bytes += size;
            // Fixed-width strawman: 16-byte record plus any result payload.
            naive_bytes += 16 + entry.result_payload_len();
        }
        SketchStats {
            per_class,
            total_bytes,
            total_entries: sketch.entries.len() as u64,
            naive_bytes,
        }
    }

    /// The stats for one class.
    pub fn class(&self, class: EntryClass) -> ClassStats {
        self.per_class
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    /// Codec compression ratio vs. the fixed-width strawman.
    pub fn compression_ratio(&self) -> f64 {
        if self.total_bytes == 0 {
            1.0
        } else {
            self.naive_bytes as f64 / self.total_bytes as f64
        }
    }

    /// The class contributing the most bytes, if any entries exist.
    pub fn dominant_class(&self) -> Option<EntryClass> {
        self.per_class
            .iter()
            .max_by_key(|(_, s)| s.bytes)
            .filter(|(_, s)| s.entries > 0)
            .map(|(c, _)| *c)
    }
}

impl fmt::Display for SketchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} entries, {} bytes encoded ({:.1}x vs fixed-width)",
            self.total_entries,
            self.total_bytes,
            self.compression_ratio()
        )?;
        for (class, stats) in &self.per_class {
            if stats.entries > 0 {
                writeln!(
                    f,
                    "  {:9} {:8} entries {:10} bytes",
                    class.label(),
                    stats.entries,
                    stats.bytes
                )?;
            }
        }
        Ok(())
    }
}

/// Summary statistics over one reproduction effort's attempt history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreStats {
    /// Attempts recorded in the history.
    pub attempts: u64,
    /// Attempts that aborted on divergence/stall.
    pub diverged: u64,
    /// Distinct exploration seeds (base interleavings) tried.
    pub distinct_seeds: u64,
    /// Distinct `(seed, constraints)` plans tried. Equals `attempts`
    /// unless the dedup ledger is broken — wasted attempts show up as a
    /// gap between these two numbers.
    pub distinct_plans: u64,
    /// Deepest constraint set executed.
    pub max_constraints: u64,
    /// Whether the run's `workers × pool_width` knobs were clamped by
    /// [`crate::explore::ExploreConfig::validate`] (see
    /// [`ExploreStats::with_clamp`]); `of()` alone cannot know, so it
    /// defaults to `false`.
    pub clamped: bool,
}

impl ExploreStats {
    /// Analyses a reproduction's history.
    pub fn of(rep: &Reproduction) -> ExploreStats {
        let seeds: BTreeSet<u64> = rep.history.iter().map(|h| h.seed).collect();
        let plans: BTreeSet<&str> = rep.history.iter().map(|h| h.plan.as_str()).collect();
        ExploreStats {
            attempts: rep.history.len() as u64,
            diverged: rep.history.iter().filter(|h| h.diverged).count() as u64,
            distinct_seeds: seeds.len() as u64,
            distinct_plans: plans.len() as u64,
            max_constraints: rep
                .history
                .iter()
                .map(|h| h.constraints as u64)
                .max()
                .unwrap_or(0),
            clamped: false,
        }
    }

    /// Records whether the exploration knobs were clamped against the host
    /// (the [`crate::explore::ValidationOutcome`] of the config that ran).
    pub fn with_clamp(mut self, clamped: bool) -> ExploreStats {
        self.clamped = clamped;
        self
    }

    /// Attempts spent on a plan already tried before — always zero with a
    /// healthy explorer.
    pub fn wasted_attempts(&self) -> u64 {
        self.attempts - self.distinct_plans
    }
}

impl fmt::Display for ExploreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} attempts ({} diverged), {} seeds, {} distinct plans, depth {}{}",
            self.attempts,
            self.diverged,
            self.distinct_seeds,
            self.distinct_plans,
            self.max_constraints,
            if self.clamped { " (knobs clamped)" } else { "" }
        )
    }
}

impl crate::sketch::SketchEntry {
    /// Bytes of recorded result payload (syscall results).
    pub fn result_payload_len(&self) -> u64 {
        match &self.result {
            pres_tvm::op::OpResult::Bytes(b) => b.len() as u64,
            pres_tvm::op::OpResult::MaybeBytes(Some(b)) => b.len() as u64,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ClosureProgram;
    use crate::recorder::record;
    use crate::sketch::Mechanism;
    use pres_tvm::prelude::*;

    fn sample_sketch(mechanism: Mechanism) -> Sketch {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let m = spec.lock("m");
        let prog = ClosureProgram::new("sample", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    for i in 0..5u32 {
                        ctx.bb(i);
                        ctx.with_lock(m, |ctx| {
                            let v = ctx.read(x);
                            ctx.write(x, v + 1);
                        });
                        ctx.compute(50);
                    }
                });
                ctx.println("hello");
                ctx.join(t);
            })
        });
        record(&prog, mechanism, &VmConfig::default(), 3).sketch
    }

    #[test]
    fn totals_are_consistent() {
        let sketch = sample_sketch(Mechanism::Rw);
        let stats = SketchStats::of(&sketch);
        assert_eq!(stats.total_entries, sketch.entries.len() as u64);
        let class_sum: u64 = stats.per_class.iter().map(|(_, s)| s.entries).sum();
        assert_eq!(class_sum, stats.total_entries);
        let byte_sum: u64 = stats.per_class.iter().map(|(_, s)| s.bytes).sum();
        assert_eq!(byte_sum, stats.total_bytes);
    }

    #[test]
    fn rw_is_memory_dominated_sync_is_not() {
        let rw = SketchStats::of(&sample_sketch(Mechanism::Rw));
        assert!(rw.class(EntryClass::Memory).entries > 0);
        let sync = SketchStats::of(&sample_sketch(Mechanism::Sync));
        assert_eq!(sync.class(EntryClass::Memory).entries, 0);
        assert!(sync.class(EntryClass::Sync).entries > 0);
    }

    #[test]
    fn codec_beats_the_fixed_width_strawman() {
        let stats = SketchStats::of(&sample_sketch(Mechanism::Rw));
        assert!(
            stats.compression_ratio() > 2.0,
            "varint encoding should be at least 2x denser, got {:.2}",
            stats.compression_ratio()
        );
    }

    #[test]
    fn dominant_class_tracks_the_mechanism() {
        let bb = SketchStats::of(&sample_sketch(Mechanism::Bb));
        assert!(bb.class(EntryClass::BasicBlock).entries > 0);
        let sys = SketchStats::of(&sample_sketch(Mechanism::Sys));
        // SYS sketches are dominated by syscalls or lifecycle events.
        let dom = sys.dominant_class().unwrap();
        assert!(
            matches!(dom, EntryClass::Syscall | EntryClass::Lifecycle),
            "{dom:?}"
        );
    }

    #[test]
    fn display_renders_nonempty_classes_only() {
        let stats = SketchStats::of(&sample_sketch(Mechanism::Sync));
        let text = stats.to_string();
        assert!(text.contains("sync"));
        assert!(!text.contains(" memory"));
    }

    #[test]
    fn explore_stats_count_attempts_and_plans() {
        use crate::explore::{reproduce, ExploreConfig};
        use crate::recorder::record_until_failure;

        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let prog = ClosureProgram::new("racy", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    let v = ctx.read(x);
                    ctx.compute(20);
                    ctx.write(x, v + 1);
                });
                let v = ctx.read(x);
                ctx.compute(20);
                ctx.write(x, v + 1);
                ctx.join(t);
                let total = ctx.read(x);
                ctx.check(total == 2, "lost update");
            })
        });
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Sync, &config, 0..2000).unwrap();
        let rep = reproduce(
            &prog,
            &run.sketch,
            "assert:never",
            &config,
            &ExploreConfig {
                max_attempts: 12,
                ..ExploreConfig::default()
            },
        );
        let stats = ExploreStats::of(&rep);
        assert_eq!(stats.attempts, 12);
        assert_eq!(stats.wasted_attempts(), 0);
        assert!(stats.distinct_seeds >= 1);
        let text = stats.to_string();
        assert!(text.contains("12 attempts"));
    }

    #[test]
    fn empty_sketch_is_handled() {
        let stats = SketchStats::of(&Sketch::new(Mechanism::Sync));
        assert_eq!(stats.total_entries, 0);
        assert_eq!(stats.compression_ratio(), 1.0);
        assert_eq!(stats.dominant_class(), None);
    }
}
