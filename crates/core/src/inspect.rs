//! Human-readable rendering of failing executions.
//!
//! Once a certificate exists, the developer has a fully deterministic
//! failing execution to stare at. This module turns a traced
//! [`RunOutcome`] into the diagnosis artifacts PRES's workflow ends with:
//! a failure report (what happened, who was involved), a per-thread
//! interleaving timeline of the final events before the failure, and the
//! racing access pairs ranked the same way the feedback engine ranks them.

use crate::feedback;
use pres_race::hb::{dedup_static, detect_races};
use pres_tvm::error::RunStatus;
use pres_tvm::ids::ThreadId;
use pres_tvm::vm::RunOutcome;
use std::fmt::Write as _;

/// Options for [`failure_report`].
#[derive(Debug, Clone)]
pub struct InspectOptions {
    /// How many trailing events the timeline shows.
    pub timeline_events: usize,
    /// How many racing pairs to list.
    pub max_races: usize,
}

impl Default for InspectOptions {
    fn default() -> Self {
        InspectOptions {
            timeline_events: 24,
            max_races: 8,
        }
    }
}

fn thread_label(outcome: &RunOutcome, tid: ThreadId) -> String {
    match outcome.thread_names.get(tid.index()) {
        Some(name) => format!("{tid}:{name}"),
        None => tid.to_string(),
    }
}

/// Renders a diagnosis report for a traced run.
///
/// Works best on certificate replays (deterministic, full trace); on a
/// non-failing run it degrades to a plain execution summary.
pub fn failure_report(outcome: &RunOutcome, options: &InspectOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== execution report ===");
    let _ = writeln!(out, "status : {}", outcome.status);
    let _ = writeln!(
        out,
        "ops    : {} total ({} mem, {} sync, {} syscalls) on {} threads",
        outcome.stats.total_ops,
        outcome.stats.mem_accesses,
        outcome.stats.sync_ops,
        outcome.stats.syscalls,
        outcome.thread_names.len()
    );
    let _ = writeln!(
        out,
        "time   : makespan {} units on {} cores (work {}, span {}, serial {})",
        outcome.time.makespan,
        outcome.time.processors,
        outcome.time.work,
        outcome.time.span,
        outcome.time.serial
    );

    if let RunStatus::Failed(f) = &outcome.status {
        let _ = writeln!(out, "failure: {f}");
    }

    if outcome.trace.is_empty() {
        let _ = writeln!(out, "(no trace captured — run with TraceMode::Full)");
        return out;
    }

    // Interleaving timeline: one column-indented line per event, so the
    // thread switches leading into the failure are visible at a glance.
    let _ = writeln!(out, "\n--- final {} events ---", options.timeline_events);
    let events = outcome.trace.events();
    let start = events.len().saturating_sub(options.timeline_events);
    for e in &events[start..] {
        let indent = "        ".repeat(e.tid.index().min(6));
        let _ = writeln!(
            out,
            "{:>6}  {indent}{} {}",
            e.gseq,
            thread_label(outcome, e.tid),
            e.op
        );
    }

    // Racing pairs, feedback-ranked.
    let races = dedup_static(&detect_races(&outcome.trace));
    if !races.is_empty() {
        let _ = writeln!(out, "\n--- racing access pairs (static, ranked) ---");
        let ranked = feedback::candidates(&outcome.trace);
        for cand in ranked.into_iter().take(options.max_races) {
            let flag = if cand.lockset_flagged {
                " [lockset violation]"
            } else {
                ""
            };
            let _ = writeln!(out, "  flip {}{}", cand.constraint, flag);
        }
    }

    // Per-thread activity summary.
    let _ = writeln!(out, "\n--- per-thread activity ---");
    for (i, name) in outcome.thread_names.iter().enumerate() {
        let tid = ThreadId(i as u32);
        let count = outcome.trace.thread_events(tid).count();
        let last = outcome
            .trace
            .thread_events(tid)
            .last()
            .map(|e| e.op.to_string())
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(out, "  {tid} {name:12} {count:6} events, last: {last}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ClosureProgram, Program};
    use crate::recorder::run_traced;
    use pres_tvm::prelude::*;

    fn failing_outcome() -> RunOutcome {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let prog = ClosureProgram::new("demo", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                let t = ctx.spawn("writer", move |ctx| {
                    ctx.write(x, 1);
                });
                ctx.write(x, 2);
                ctx.join(t);
                ctx.check(false, "always fails");
            })
        });
        for seed in 0..50 {
            let out = run_traced(&prog, &VmConfig::default(), seed);
            if out.status.is_failed() {
                return out;
            }
        }
        panic!("program always fails by construction");
    }

    #[test]
    fn report_contains_the_essentials() {
        let out = failing_outcome();
        let report = failure_report(&out, &InspectOptions::default());
        assert!(report.contains("status : failed"));
        assert!(report.contains("always fails"));
        assert!(report.contains("final"));
        assert!(report.contains("per-thread activity"));
        assert!(report.contains("writer"));
        // The unlocked write/write race surfaces as a flip suggestion.
        assert!(report.contains("flip"), "{report}");
        assert!(report.contains("[lockset violation]"), "{report}");
    }

    #[test]
    fn report_degrades_without_a_trace() {
        let spec = ResourceSpec::new();
        let prog = ClosureProgram::new("tiny", spec, WorldConfig::default(), || {
            Box::new(|ctx: &mut Ctx| ctx.compute(1))
        });
        let body = prog.root();
        let out = pres_tvm::vm::run(
            VmConfig::default(), // TraceMode::Off
            prog.resources(),
            &mut RoundRobinScheduler::new(),
            &mut NullObserver,
            move |ctx| body(ctx),
        );
        let report = failure_report(&out, &InspectOptions::default());
        assert!(report.contains("no trace captured"));
    }

    #[test]
    fn timeline_respects_the_event_budget() {
        let out = failing_outcome();
        let report = failure_report(
            &out,
            &InspectOptions {
                timeline_events: 3,
                max_races: 1,
            },
        );
        assert!(report.contains("final 3 events"));
    }
}
