//! The partial-information replayer (PI-replay).
//!
//! Given a sketch, the replay scheduler enforces the recorded global order
//! over sketch-relevant operations while leaving everything the sketch did
//! not record — the interleaving of racing memory accesses and, under
//! coarse sketches, of synchronization — to an exploration policy:
//!
//! * a thread whose announced operation *is* sketch-relevant runs only when
//!   it is the next entry of the recorded order (otherwise it stalls);
//! * a thread whose announced relevant operation does not match its own
//!   next recorded entry has **diverged** — the attempt is aborted
//!   immediately (the paper's early divergence detection, which is what
//!   makes failed attempts cheap);
//! * unrecorded operations are scheduled freely, subject to the *flip
//!   constraints* installed by the feedback engine: "thread A's i-th action
//!   on object O must wait until thread B's j-th action on O has executed".
//!
//! Once the sketch is exhausted (replay has reached the end of the recorded
//! prefix), all ordering is free — the failure typically manifests at or
//! near this frontier, since production recording stopped at the failure.
//!
//! The replayer consumes the sketch in its **canonical order** — the
//! order the sharded recorder's deterministic merge produces (see
//! `sketch::canonical_order` and DESIGN.md §3.2.2). Thread-local marker
//! entries (FUNC/BB) sit at the same positions a single global log would
//! have given them, so replay semantics are recorder-independent.

use crate::sketch::{MechanismFilter, Sketch, SketchIndex, SketchOp};
use pres_tvm::ids::ThreadId;
use pres_tvm::op::{MemLoc, Op};
use pres_tvm::sched::{Decision, SchedView, Scheduler};

use pres_tvm::rng::ChaCha8Rng;
use pres_tvm::sched::RandomScheduler;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// The object an order constraint talks about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ActionObj {
    /// A shared-memory location.
    Mem(MemLoc),
    /// A mutex (raw lock id) — lock-acquire interleavings are explorable
    /// too, which is how deadlocks are reproduced under sketches that do
    /// not record synchronization.
    Lock(u32),
}

impl ActionObj {
    /// The constrained object of an operation, if any.
    pub fn of_op(op: &Op) -> Option<ActionObj> {
        if let Some(loc) = op.mem_location() {
            return Some(ActionObj::Mem(loc));
        }
        if let Op::LockAcquire(l) = op {
            return Some(ActionObj::Lock(l.0));
        }
        None
    }
}

impl fmt::Display for ActionObj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionObj::Mem(loc) => write!(f, "{loc}"),
            ActionObj::Lock(l) => write!(f, "m{l}"),
        }
    }
}

/// One side of an order constraint: the `index`-th action of `tid` on `obj`
/// (indices count that thread's accesses/acquires of that object, from 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ActionKey {
    /// The acting thread.
    pub tid: ThreadId,
    /// The object.
    pub obj: ActionObj,
    /// Per-(thread, object) occurrence index.
    pub index: u32,
}

impl fmt::Display for ActionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}@{}", self.tid, self.index, self.obj)
    }
}

/// A feedback flip: `before` must execute before `after` may run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct OrderConstraint {
    /// Must happen first.
    pub before: ActionKey,
    /// Held back until then.
    pub after: ActionKey,
}

impl fmt::Display for OrderConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} < {}", self.before, self.after)
    }
}

/// Why a replay attempt was aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// A thread announced a sketch-relevant op that does not match its next
    /// recorded entry: the execution left the recorded path.
    Content {
        /// The diverging thread.
        tid: ThreadId,
        /// What it announced.
        announced: String,
        /// What the sketch expected of it next.
        expected: String,
        /// Global sketch cursor at detection.
        cursor: usize,
    },
    /// Every enabled thread is stalled by sketch order or flip constraints.
    Stuck {
        /// Global sketch cursor at detection.
        cursor: usize,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Content {
                tid,
                announced,
                expected,
                cursor,
            } => write!(
                f,
                "divergence at sketch cursor {cursor}: {tid} announced {announced}, expected {expected}"
            ),
            Divergence::Stuck { cursor } => {
                write!(f, "replay stuck at sketch cursor {cursor}: all enabled threads stalled")
            }
        }
    }
}

/// The sketch-constrained exploration scheduler.
pub struct PiReplayScheduler {
    /// The shared, immutable sketch index (normalized ops + per-thread
    /// entry lists). Built once per reproduction and borrowed by every
    /// attempt on every worker; only the cursors below are per-attempt.
    index: Arc<SketchIndex>,
    filter: MechanismFilter,
    cursor: usize,
    /// Per-thread positions into the index's per-thread entry lists —
    /// `thread_pos[t]` entries of thread `t` have been consumed.
    thread_pos: Vec<usize>,
    constraints: Vec<OrderConstraint>,
    satisfied: Vec<bool>,
    counters: BTreeMap<(ThreadId, ActionObj), u32>,
    rng: ChaCha8Rng,
    /// Whether the sketch order is still being enforced. Replay is
    /// best-effort, as in the paper: the sketch steers execution along the
    /// recorded path, but the moment the run leaves that path — content
    /// divergence, or a stall that would wedge a pending flip constraint —
    /// enforcement is dropped and the run continues free; the failure
    /// oracle, not the sketch, decides whether the attempt succeeded.
    enforcing: bool,
    /// Strict mode aborts on divergence instead of relaxing (unless flip
    /// constraints make perturbation intentional). Used by tooling that
    /// wants divergence as a *signal* (sketch/program mismatch detection);
    /// the explorer always uses best-effort mode.
    strict: bool,
    relaxed_at: Option<u64>,
}

impl PiReplayScheduler {
    /// Builds a replay scheduler for `sketch` with the given flip
    /// constraints and exploration seed. Convenience wrapper over
    /// [`PiReplayScheduler::with_index`] for one-off replays; loops that
    /// run many attempts against one sketch should build the
    /// [`SketchIndex`] once and share it.
    pub fn new(sketch: &Sketch, constraints: Vec<OrderConstraint>, seed: u64) -> Self {
        Self::with_index(Arc::new(SketchIndex::new(sketch)), constraints, seed)
    }

    /// Builds a replay scheduler over a pre-built, shared sketch index.
    /// The scheduler's per-attempt state is just cursors and constraint
    /// bookkeeping; the index itself is never copied.
    pub fn with_index(
        index: Arc<SketchIndex>,
        constraints: Vec<OrderConstraint>,
        seed: u64,
    ) -> Self {
        let satisfied = vec![false; constraints.len()];
        // A checkpoint-bearing index describes only the retained window:
        // its entries start at the boundary, and the BB-N sampling counters
        // must resume from the recorded mid-run state or every Nth-marker
        // decision after the boundary would disagree with production.
        let filter = match index.checkpoint() {
            Some(cp) => MechanismFilter::with_counters(index.mechanism(), cp.bbn_counters.clone()),
            None => MechanismFilter::new(index.mechanism()),
        };
        PiReplayScheduler {
            filter,
            thread_pos: vec![0; index.threads()],
            index,
            cursor: 0,
            constraints,
            satisfied,
            counters: BTreeMap::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            enforcing: true,
            strict: false,
            relaxed_at: None,
        }
    }

    /// Makes divergence abort the run instead of relaxing enforcement.
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// The step at which sketch enforcement was relaxed, if it was.
    pub fn relaxed_at(&self) -> Option<u64> {
        self.relaxed_at
    }

    /// How much of the sketch has been consumed (0..=1).
    pub fn progress(&self) -> f64 {
        if self.index.is_empty() {
            1.0
        } else {
            self.cursor as f64 / self.index.len() as f64
        }
    }

    /// Whether the full recorded prefix has been replayed.
    pub fn sketch_exhausted(&self) -> bool {
        self.cursor >= self.index.len()
    }

    /// The next unconsumed sketch entry of `tid`, if any.
    fn thread_front(&self, tid: ThreadId) -> Option<usize> {
        let pos = self.thread_pos.get(tid.index()).copied()?;
        self.index.thread_indices(tid).get(pos).copied()
    }

    fn counter(&self, tid: ThreadId, obj: ActionObj) -> u32 {
        self.counters.get(&(tid, obj)).copied().unwrap_or(0)
    }

    /// Whether running this op now would violate a pending flip constraint.
    fn constraint_blocked(&self, tid: ThreadId, op: &Op) -> bool {
        let Some(obj) = ActionObj::of_op(op) else {
            return false;
        };
        let key = ActionKey {
            tid,
            obj,
            index: self.counter(tid, obj),
        };
        self.constraints
            .iter()
            .zip(&self.satisfied)
            .any(|(c, sat)| !sat && c.after == key)
    }

    /// Classification of one enabled candidate.
    fn classify(&self, tid: ThreadId, op: &Op) -> CandidateClass {
        if self.constraint_blocked(tid, op) {
            return CandidateClass::StalledByFlip;
        }
        if !self.enforcing || !self.filter.would_record(tid, op) {
            return CandidateClass::Free;
        }
        let Some(normalized) = SketchOp::from_op(op) else {
            return CandidateClass::Free; // Fail op: always schedulable
        };
        let Some(front) = self.thread_front(tid) else {
            // This thread has no recorded entries left. Production
            // recording stopped at the failure, so anything past a
            // thread's recorded prefix either blocked or never ran before
            // the failure point: hold it back until the whole sketch is
            // consumed, then run free.
            return if self.sketch_exhausted() {
                CandidateClass::Free
            } else {
                CandidateClass::StalledBySketch
            };
        };
        if *self.index.op(front) != normalized {
            return CandidateClass::Diverged {
                expected: format!("{:?}", self.index.op(front)),
                announced: format!("{normalized:?}"),
            };
        }
        if front == self.cursor {
            CandidateClass::Free
        } else {
            CandidateClass::StalledBySketch
        }
    }
}

enum CandidateClass {
    Free,
    StalledBySketch,
    StalledByFlip,
    Diverged { expected: String, announced: String },
}

impl Scheduler for PiReplayScheduler {
    fn pick(&mut self, view: &SchedView<'_>) -> Decision {
        let perturbed = !self.constraints.is_empty();
        let mut allowed: Vec<ThreadId> = Vec::new();
        let mut sketch_stalled: Vec<ThreadId> = Vec::new();
        let mut diverged: Option<Divergence> = None;
        for cand in view.enabled {
            match self.classify(cand.tid, &cand.op) {
                CandidateClass::Free => allowed.push(cand.tid),
                CandidateClass::StalledBySketch => sketch_stalled.push(cand.tid),
                CandidateClass::StalledByFlip => {}
                CandidateClass::Diverged {
                    expected,
                    announced,
                } => {
                    diverged.get_or_insert(Divergence::Content {
                        tid: cand.tid,
                        announced,
                        expected,
                        cursor: self.cursor,
                    });
                }
            }
        }

        let may_relax = self.enforcing && (!self.strict || perturbed);
        if let Some(div) = diverged {
            if may_relax {
                // The execution left the recorded path (a flip did its job,
                // or the unrecorded nondeterminism resolved differently):
                // stop enforcing the sketch and let the run play out.
                self.enforcing = false;
                self.relaxed_at = Some(view.step);
                return self.pick(view);
            }
            if self.enforcing {
                return Decision::Abort(div.to_string());
            }
        }

        if allowed.is_empty() {
            if may_relax && !sketch_stalled.is_empty() {
                // The sketch order wedges progress: relax it.
                self.enforcing = false;
                self.relaxed_at = Some(view.step);
                allowed = sketch_stalled;
            } else {
                return Decision::Abort(
                    Divergence::Stuck { cursor: self.cursor }.to_string(),
                );
            }
        }
        let idx = self.rng.gen_range(0..allowed.len());
        Decision::Run(allowed[idx])
    }

    fn on_applied(&mut self, tid: ThreadId, op: &Op) {
        // Advance the sketch cursor if this was the expected entry.
        let relevant = self.filter.would_record(tid, op) && SketchOp::from_op(op).is_some();
        self.filter.note_executed(tid, op);
        if relevant {
            if let Some(front) = self.thread_front(tid) {
                if front == self.cursor {
                    self.thread_pos[tid.index()] += 1;
                    self.cursor += 1;
                }
                // `front != cursor` can only mean the thread is past its
                // recorded prefix in a region the filter still matches —
                // impossible by construction (pick stalls it), except
                // when its list drained: handled by thread_front's None.
            }
        }
        // Advance action counters and mark satisfied constraints.
        if let Some(obj) = ActionObj::of_op(op) {
            let key = ActionKey {
                tid,
                obj,
                index: self.counter(tid, obj),
            };
            for (i, c) in self.constraints.iter().enumerate() {
                if c.before == key {
                    self.satisfied[i] = true;
                }
            }
            *self.counters.entry((tid, obj)).or_insert(0) += 1;
        }
    }
}

/// Replay-from-checkpoint: fast-forwards an attempt through the
/// unretained prefix, then hands control to the sketch-constrained
/// explorer at the checkpoint boundary.
///
/// A ring-flushed sketch covers only the retained window; everything
/// before its checkpoint boundary was evicted. The VM is deterministic
/// given a pick sequence, so the prefix needs no log at all: replaying
/// the production run's own scheduler (reconstructed from the recorded
/// seed) for exactly `boundary` picks re-derives the checkpointed state —
/// re-execution *is* restoration, and the embedded snapshot serves as the
/// integrity witness (see [`crate::recorder::verify_checkpoint`]) rather
/// than as the restore source.
///
/// During the prefix the wrapped [`PiReplayScheduler`] is completely
/// inert: its `on_applied` is suppressed, so its sketch cursor, flip
/// bookkeeping, and per-(thread, object) action counters all start
/// counting at the boundary — the same origin the retained entries and
/// the feedback extractor's candidates use. A checkpoint-free index has
/// boundary 0 and delegates from the first pick, so every classic replay
/// is just the degenerate case of this scheduler.
pub struct FastForwardScheduler {
    /// The production scheduler, reconstructed from the recorded seed;
    /// owns every pick before the boundary.
    production: RandomScheduler,
    /// Picks before this boundary fast-forward; picks at or after it
    /// explore.
    boundary: u64,
    /// Events applied so far.
    applied: u64,
    inner: PiReplayScheduler,
}

impl FastForwardScheduler {
    /// Builds the fast-forwarding explorer over a shared sketch index. The
    /// boundary and production seed come from the index's checkpoint;
    /// without one the scheduler is exactly a [`PiReplayScheduler`].
    pub fn with_index(
        index: Arc<SketchIndex>,
        constraints: Vec<OrderConstraint>,
        seed: u64,
    ) -> Self {
        let (boundary, production_seed) = index
            .checkpoint()
            .map(|cp| (cp.boundary, cp.production_seed))
            .unwrap_or((0, 0));
        FastForwardScheduler {
            production: RandomScheduler::new(production_seed),
            boundary,
            applied: 0,
            inner: PiReplayScheduler::with_index(index, constraints, seed),
        }
    }

    /// The checkpoint boundary in picks (0 for classic sketches).
    pub fn boundary(&self) -> u64 {
        self.boundary
    }

    /// Whether the attempt is still fast-forwarding through the prefix.
    pub fn in_prefix(&self) -> bool {
        self.applied < self.boundary
    }

    /// Makes post-boundary divergence abort instead of relaxing.
    pub fn strict(mut self) -> Self {
        self.inner = self.inner.strict();
        self
    }

    /// The step at which sketch enforcement was relaxed, if it was.
    pub fn relaxed_at(&self) -> Option<u64> {
        self.inner.relaxed_at()
    }

    /// Whether the full retained window has been replayed.
    pub fn sketch_exhausted(&self) -> bool {
        self.inner.sketch_exhausted()
    }
}

impl Scheduler for FastForwardScheduler {
    fn pick(&mut self, view: &SchedView<'_>) -> Decision {
        if self.applied < self.boundary {
            self.production.pick(view)
        } else {
            self.inner.pick(view)
        }
    }

    fn on_applied(&mut self, tid: ThreadId, op: &Op) {
        if self.applied < self.boundary {
            self.production.on_applied(tid, op);
        } else {
            self.inner.on_applied(tid, op);
        }
        self.applied += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ClosureProgram, Program};
    use crate::recorder::{record, record_until_failure};
    use crate::sketch::Mechanism;
    use pres_tvm::prelude::*;

    fn two_phase_program() -> impl Program {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let m = spec.lock("m");
        ClosureProgram::new("two-phase", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    ctx.with_lock(m, |ctx| {
                        let v = ctx.read(x);
                        ctx.write(x, v + 10);
                    });
                });
                ctx.with_lock(m, |ctx| {
                    let v = ctx.read(x);
                    ctx.write(x, v + 1);
                });
                ctx.join(t);
            })
        })
    }

    fn replay(
        prog: &dyn Program,
        sketch: &crate::sketch::Sketch,
        constraints: Vec<OrderConstraint>,
        seed: u64,
    ) -> pres_tvm::vm::RunOutcome {
        let mut sched = PiReplayScheduler::new(sketch, constraints, seed);
        let body = prog.root();
        pres_tvm::vm::run(
            VmConfig {
                trace_mode: TraceMode::Full,
                world: prog.world(),
                ..VmConfig::default()
            },
            prog.resources(),
            &mut sched,
            &mut NullObserver,
            move |ctx| body(ctx),
        )
    }

    #[test]
    fn rw_sketch_replays_deterministically() {
        let prog = two_phase_program();
        let config = VmConfig::default();
        // Find a seed where the worker wins the lock first (x = 10 then 11)
        // and one where main wins (x = 1 then 11) — the lock order differs.
        let run = record(&prog, Mechanism::Rw, &config, 3);
        for attempt_seed in 0..5 {
            let out = replay(&prog, &run.sketch, vec![], attempt_seed);
            assert_eq!(
                out.status,
                RunStatus::Completed,
                "RW replay must complete: {}",
                out.status
            );
            // The shared-access interleaving is pinned: traces of shared ops
            // must match the production order regardless of seed.
            let sketch2 = crate::sketch::Sketch::from_events(Mechanism::Rw, out.trace.events());
            assert_eq!(sketch2.entries, run.sketch.entries, "seed {attempt_seed}");
        }
    }

    #[test]
    fn sync_sketch_pins_lock_order() {
        let prog = two_phase_program();
        let config = VmConfig::default();
        let run = record(&prog, Mechanism::Sync, &config, 3);
        for attempt_seed in 0..5 {
            let out = replay(&prog, &run.sketch, vec![], attempt_seed);
            assert_eq!(out.status, RunStatus::Completed);
            let sync2 = crate::sketch::Sketch::from_events(Mechanism::Sync, out.trace.events());
            assert_eq!(sync2.entries, run.sketch.entries);
        }
    }

    #[test]
    fn rw_replay_reproduces_a_recorded_failure_first_try() {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let prog = ClosureProgram::new("racy", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    let v = ctx.read(x);
                    ctx.compute(20);
                    ctx.write(x, v + 1);
                });
                let v = ctx.read(x);
                ctx.compute(20);
                ctx.write(x, v + 1);
                ctx.join(t);
                let total = ctx.read(x);
                ctx.check(total == 2, "lost update");
            })
        });
        let config = VmConfig::default();
        let run = record_until_failure(&prog, Mechanism::Rw, &config, 0..200)
            .expect("a failing seed exists");
        let out = replay(&prog, &run.sketch, vec![], 999);
        match out.status {
            RunStatus::Failed(f) => assert_eq!(f.signature(), "assert:lost update"),
            other => panic!("RW replay must reproduce on attempt 1, got {other}"),
        }
    }

    #[test]
    fn flip_constraint_reorders_unrecorded_accesses() {
        // Two unsynchronized writers; record under SYS (no memory order).
        // A flip constraint forces the loser of the recorded run to go
        // first during replay.
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let prog = ClosureProgram::new("order", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    ctx.write(x, 1);
                });
                ctx.write(x, 2);
                ctx.join(t);
                // Record the final value through stdout for inspection.
                let v = ctx.read(x);
                ctx.println(&format!("final={v}"));
            })
        });
        let config = VmConfig::default();
        let run = record(&prog, Mechanism::Sys, &config, 3);

        // Unconstrained replay with seed s: observe some final value.
        let base = replay(&prog, &run.sketch, vec![], 7);
        assert_eq!(base.status, RunStatus::Completed);
        let base_out = String::from_utf8(base.stdout.clone()).unwrap();

        // Find the two writes in the replay trace and flip their order.
        let loc = ActionObj::Mem(MemLoc::Var(x));
        let writes: Vec<(ThreadId, u64)> = base
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.op, Op::Write(v, _) if v == x))
            .map(|e| (e.tid, e.gseq))
            .collect();
        assert_eq!(writes.len(), 2);
        let (first_tid, _) = writes[0];
        let (second_tid, _) = writes[1];
        assert_ne!(first_tid, second_tid);
        let constraint = OrderConstraint {
            before: ActionKey {
                tid: second_tid,
                obj: loc,
                index: 0,
            },
            after: ActionKey {
                tid: first_tid,
                obj: loc,
                index: 0,
            },
        };
        let flipped = replay(&prog, &run.sketch, vec![constraint], 7);
        assert_eq!(flipped.status, RunStatus::Completed);
        let flipped_out = String::from_utf8(flipped.stdout.clone()).unwrap();
        assert_ne!(
            base_out, flipped_out,
            "flipping the write order must change the final value"
        );
    }

    #[test]
    fn divergence_is_detected_when_program_changes() {
        // Record program A; replay program B whose sync sequence differs.
        let mut spec_a = ResourceSpec::new();
        let m = spec_a.lock("m");
        let prog_a = ClosureProgram::new("a", spec_a.clone(), WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                ctx.lock(m);
                ctx.unlock(m);
                ctx.lock(m);
                ctx.unlock(m);
            })
        });
        let run = record(&prog_a, Mechanism::Sync, &VmConfig::default(), 1);

        let prog_b = ClosureProgram::new("b", spec_a, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                ctx.lock(m);
                ctx.unlock(m);
                // Second acquire missing: announces exit where the sketch
                // expects a lock.
            })
        });
        // Strict mode surfaces the divergence as an abort.
        let mut sched = PiReplayScheduler::new(&run.sketch, vec![], 1).strict();
        let body = prog_b.root();
        let out = pres_tvm::vm::run(
            VmConfig {
                trace_mode: TraceMode::Full,
                world: prog_b.world(),
                ..VmConfig::default()
            },
            prog_b.resources(),
            &mut sched,
            &mut NullObserver,
            move |ctx| body(ctx),
        );
        match out.status {
            RunStatus::Aborted(msg) => assert!(msg.contains("divergence"), "{msg}"),
            other => panic!("expected divergence abort, got {other}"),
        }
        // Best-effort mode (the explorer's default) relaxes and completes.
        let relaxed = replay(&prog_b, &run.sketch, vec![], 1);
        assert_eq!(relaxed.status, RunStatus::Completed);
    }

    #[test]
    fn contradictory_constraints_stall_and_abort() {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let prog = ClosureProgram::new("tiny", spec, WorldConfig::default(), move || {
            Box::new(move |ctx: &mut Ctx| {
                ctx.write(x, 1);
            })
        });
        let run = record(&prog, Mechanism::Sys, &VmConfig::default(), 1);
        // Constraint: t0's first write to x must wait for t1's write — but
        // there is no t1, so replay stalls and aborts.
        let loc = ActionObj::Mem(MemLoc::Var(x));
        let c = OrderConstraint {
            before: ActionKey {
                tid: ThreadId(1),
                obj: loc,
                index: 0,
            },
            after: ActionKey {
                tid: ThreadId(0),
                obj: loc,
                index: 0,
            },
        };
        let out = replay(&prog, &run.sketch, vec![c], 1);
        match out.status {
            RunStatus::Aborted(msg) => assert!(msg.contains("stuck"), "{msg}"),
            other => panic!("expected stuck abort, got {other}"),
        }
    }

    #[test]
    fn progress_tracks_cursor() {
        let prog = two_phase_program();
        let run = record(&prog, Mechanism::Sync, &VmConfig::default(), 3);
        let sched = PiReplayScheduler::new(&run.sketch, vec![], 0);
        assert_eq!(sched.progress(), 0.0);
        assert!(!sched.sketch_exhausted());
        let empty = crate::sketch::Sketch::new(Mechanism::Sync);
        let sched2 = PiReplayScheduler::new(&empty, vec![], 0);
        assert!(sched2.sketch_exhausted());
        assert_eq!(sched2.progress(), 1.0);
    }
}
