//! # pres-race — race analysis over `pres-tvm` traces
//!
//! Supporting analyses for the PRES reproduction:
//!
//! * [`vclock`] — vector clocks and access epochs;
//! * [`hb`] — a FastTrack-style happens-before detector that reports the
//!   concurrent conflicting access pairs a failed replay attempt exposed
//!   (the raw material of PRES's feedback generation);
//! * [`lockset`] — an Eraser-style lockset checker used to rank feedback
//!   candidates (locations violating the locking discipline are likelier
//!   root causes).
//!
//! ```
//! use pres_race::hb::detect_races;
//! use pres_tvm::prelude::*;
//!
//! let mut spec = ResourceSpec::new();
//! let x = spec.var("x", 0);
//! let out = pres_tvm::vm::run(
//!     VmConfig { trace_mode: TraceMode::Full, ..VmConfig::default() },
//!     spec,
//!     &mut RandomScheduler::new(7),
//!     &mut NullObserver,
//!     move |ctx| {
//!         let t = ctx.spawn("w", move |ctx| ctx.write(x, 1));
//!         ctx.write(x, 2);
//!         ctx.join(t);
//!     },
//! );
//! let races = detect_races(&out.trace);
//! assert!(!races.is_empty());
//! ```

pub mod hb;
pub mod lockset;
pub mod vclock;

pub use hb::{dedup_static, detect_races, detect_races_in, Access, HbDetector, RacePair};
pub use lockset::{check_lockset, LocksetDetector, LocksetViolation};
pub use vclock::{Epoch, VectorClock};
