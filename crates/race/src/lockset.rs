//! Eraser-style lockset race detection.
//!
//! A complementary, cheaper detector: for every shared location, intersect
//! the set of locks held across all accesses; an empty intersection with
//! accesses from more than one thread flags a candidate race. Lockset
//! analysis over-reports (it ignores fork/join and condvar ordering), so
//! PRES uses it only to *rank* feedback candidates — a racing pair whose
//! location also fails the lockset discipline is more likely to be the root
//! cause than one ordered by happenstance.

use pres_tvm::ids::{LockId, ThreadId};
use pres_tvm::op::MemLoc;
use pres_tvm::trace::{Event, Trace};
use pres_tvm::op::Op;
use std::collections::{BTreeMap, BTreeSet};

/// A location that violates the lockset discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocksetViolation {
    /// The shared location.
    pub loc: MemLoc,
    /// The first access that emptied the candidate set.
    pub first_bad_gseq: u64,
    /// Distinct threads that accessed the location.
    pub threads: Vec<ThreadId>,
    /// Whether any access was a write (read-only sharing is benign).
    pub written: bool,
}

#[derive(Debug)]
enum LocTrack {
    /// Still within the discipline; candidate lockset so far.
    Candidate {
        set: BTreeSet<LockId>,
        threads: BTreeSet<ThreadId>,
        written: bool,
    },
    /// Discipline already violated.
    Violated,
}

/// Streaming lockset detector.
#[derive(Debug, Default)]
pub struct LocksetDetector {
    held: BTreeMap<ThreadId, BTreeSet<LockId>>,
    locs: BTreeMap<MemLoc, LocTrack>,
    violations: Vec<LocksetViolation>,
}

impl LocksetDetector {
    /// A fresh detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one event.
    pub fn observe(&mut self, event: &Event) {
        match &event.op {
            Op::LockAcquire(l) | Op::CondReacquire(_, l) => {
                self.held.entry(event.tid).or_default().insert(*l);
            }
            Op::LockRelease(l) | Op::CondWait(_, l) => {
                self.held.entry(event.tid).or_default().remove(l);
            }
            _ => {}
        }
        // Explicitly atomic operations are exempt from the locking
        // discipline (the standard Eraser refinement).
        if matches!(event.op, Op::FetchAdd(..) | Op::CompareSwap(..)) {
            return;
        }
        let Some(loc) = event.op.mem_location() else {
            return;
        };
        let is_write = event.op.is_mem_write();
        let held = self
            .held
            .get(&event.tid)
            .cloned()
            .unwrap_or_default();
        let track = self.locs.entry(loc).or_insert_with(|| LocTrack::Candidate {
            set: held.clone(),
            threads: BTreeSet::new(),
            written: false,
        });
        if let LocTrack::Candidate {
            set,
            threads,
            written,
        } = track
        {
            threads.insert(event.tid);
            *written |= is_write;
            set.retain(|l| held.contains(l));
            if set.is_empty() && threads.len() > 1 && *written {
                self.violations.push(LocksetViolation {
                    loc,
                    first_bad_gseq: event.gseq,
                    threads: threads.iter().copied().collect(),
                    written: *written,
                });
                *track = LocTrack::Violated;
            }
        }
    }

    /// Violations found so far.
    pub fn violations(&self) -> &[LocksetViolation] {
        &self.violations
    }

    /// Consumes the detector.
    pub fn into_violations(self) -> Vec<LocksetViolation> {
        self.violations
    }

    /// The set of violating locations (for quick membership checks when
    /// ranking feedback candidates).
    pub fn violating_locs(&self) -> BTreeSet<MemLoc> {
        self.violations.iter().map(|v| v.loc).collect()
    }
}

/// Runs the detector over a whole trace.
pub fn check_lockset(trace: &Trace) -> Vec<LocksetViolation> {
    let mut det = LocksetDetector::new();
    for e in trace.events() {
        det.observe(e);
    }
    det.into_violations()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pres_tvm::prelude::*;

    fn traced(
        seed: u64,
        build: impl Fn(&mut ResourceSpec) -> Box<dyn FnOnce(&mut Ctx) + Send>,
    ) -> Trace {
        let mut spec = ResourceSpec::new();
        let body = build(&mut spec);
        let out = pres_tvm::vm::run(
            VmConfig {
                trace_mode: TraceMode::Full,
                ..VmConfig::default()
            },
            spec,
            &mut RandomScheduler::new(seed),
            &mut NullObserver,
            move |ctx| body(ctx),
        );
        out.trace
    }

    #[test]
    fn consistent_locking_passes() {
        let trace = traced(1, |spec| {
            let x = spec.var("x", 0);
            let m = spec.lock("m");
            Box::new(move |ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    ctx.with_lock(m, |ctx| {
                        let v = ctx.read(x);
                        ctx.write(x, v + 1);
                    });
                });
                ctx.with_lock(m, |ctx| {
                    let v = ctx.read(x);
                    ctx.write(x, v + 1);
                });
                ctx.join(t);
            })
        });
        assert!(check_lockset(&trace).is_empty());
    }

    #[test]
    fn unlocked_shared_write_is_flagged() {
        let trace = traced(2, |spec| {
            let x = spec.var("x", 0);
            Box::new(move |ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    ctx.write(x, 1);
                });
                ctx.write(x, 2);
                ctx.join(t);
            })
        });
        let v = check_lockset(&trace);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].loc, MemLoc::Var(VarId(0)));
        assert!(v[0].written);
        assert!(v[0].threads.len() >= 2);
    }

    #[test]
    fn read_only_sharing_is_benign() {
        let trace = traced(3, |spec| {
            let x = spec.var("x", 7);
            Box::new(move |ctx| {
                let t = ctx.spawn("r", move |ctx| {
                    ctx.read(x);
                });
                ctx.read(x);
                ctx.join(t);
            })
        });
        assert!(check_lockset(&trace).is_empty());
    }

    #[test]
    fn thread_local_data_is_benign() {
        let trace = traced(4, |spec| {
            let x = spec.var("x", 0);
            Box::new(move |ctx| {
                // Only the root thread touches x, with no lock: fine.
                for i in 0..10 {
                    ctx.write(x, i);
                }
            })
        });
        assert!(check_lockset(&trace).is_empty());
    }

    #[test]
    fn inconsistent_lock_choice_is_flagged() {
        // Two threads each hold *a* lock, but different ones.
        let trace = traced(5, |spec| {
            let x = spec.var("x", 0);
            let m1 = spec.lock("m1");
            let m2 = spec.lock("m2");
            Box::new(move |ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    ctx.with_lock(m1, |ctx| ctx.write(x, 1));
                });
                ctx.with_lock(m2, |ctx| ctx.write(x, 2));
                ctx.join(t);
            })
        });
        assert_eq!(check_lockset(&trace).len(), 1);
    }

    #[test]
    fn violation_reported_once_per_location() {
        let trace = traced(6, |spec| {
            let x = spec.var("x", 0);
            Box::new(move |ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    for _ in 0..20 {
                        ctx.write(x, 1);
                    }
                });
                for _ in 0..20 {
                    ctx.write(x, 2);
                }
                ctx.join(t);
            })
        });
        assert_eq!(check_lockset(&trace).len(), 1);
    }
}
