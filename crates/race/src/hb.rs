//! Happens-before (FastTrack-style) race detection over execution traces.
//!
//! PRES's feedback generator needs to know, given a failed replay attempt's
//! trace, *which pairs of shared-memory accesses raced* — those are the
//! unrecorded ordering decisions worth flipping on the next attempt. This
//! module replays the trace through vector clocks and reports every
//! conflicting, concurrent access pair.
//!
//! Happens-before edges modeled:
//!
//! * program order within each thread;
//! * lock release → subsequent acquire (mutexes and rwlocks);
//! * condvar notify → wakeup (`CondReacquire`), and the lock hand-off of
//!   the wait itself;
//! * channel send → receive of the same message; close → `None` receive;
//! * atomic read-modify-writes (`FetchAdd`, `CompareSwap`) synchronize
//!   through their location, as sequentially-consistent atomics do: two
//!   atomic operations on the same cell are ordered and never reported as
//!   a race, while a *plain* access racing an atomic one still is;
//! * semaphore release → acquire (conservative: one clock per semaphore,
//!   which over-approximates HB and can only hide races, never invent them);
//! * barrier generations (conservative bidirectional join at arrival — an
//!   over-approximation that cannot produce false positives because access
//!   checks happen at access time, before any later join);
//! * spawn → child start, child exit → join.

use crate::vclock::{Epoch, VectorClock};
use pres_tvm::ids::ThreadId;
use pres_tvm::op::{MemLoc, Op, OpResult};
use pres_tvm::trace::{Event, Trace};
use std::collections::{BTreeMap, VecDeque};

/// One side of a race: a shared-memory access in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Access {
    /// Global sequence number of the access event.
    pub gseq: u64,
    /// Accessing thread.
    pub tid: ThreadId,
    /// Whether the access writes.
    pub is_write: bool,
}

/// A pair of conflicting, concurrent accesses (`first.gseq < second.gseq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RacePair {
    /// The contended location.
    pub loc: MemLoc,
    /// The earlier access in this trace.
    pub first: Access,
    /// The later access.
    pub second: Access,
}

impl RacePair {
    /// A coarse dedup key: location plus the unordered thread pair and
    /// access kinds. Distinct dynamic occurrences of the same static race
    /// share a key.
    pub fn static_key(&self) -> (MemLoc, ThreadId, ThreadId, bool, bool) {
        if self.first.tid <= self.second.tid {
            (
                self.loc,
                self.first.tid,
                self.second.tid,
                self.first.is_write,
                self.second.is_write,
            )
        } else {
            (
                self.loc,
                self.second.tid,
                self.first.tid,
                self.second.is_write,
                self.first.is_write,
            )
        }
    }
}

#[derive(Debug, Default)]
struct LocState {
    last_write: Option<Epoch>,
    /// Reads since the last write, at most one per thread.
    reads: Vec<Epoch>,
}

/// Streaming happens-before detector.
#[derive(Debug, Default)]
pub struct HbDetector {
    clocks: Vec<VectorClock>,
    locks: BTreeMap<u32, VectorClock>,
    rwlocks: BTreeMap<u32, VectorClock>,
    conds: BTreeMap<u32, VectorClock>,
    barriers: BTreeMap<u32, VectorClock>,
    sems: BTreeMap<u32, VectorClock>,
    chans: BTreeMap<u32, VecDeque<VectorClock>>,
    chan_close: BTreeMap<u32, VectorClock>,
    atomics: BTreeMap<MemLoc, VectorClock>,
    exit_clocks: BTreeMap<u32, VectorClock>,
    locs: BTreeMap<MemLoc, LocState>,
    races: Vec<RacePair>,
    max_races: usize,
}

impl HbDetector {
    /// Default cap on reported dynamic races.
    pub const DEFAULT_MAX_RACES: usize = 10_000;

    /// A detector with the default race cap.
    pub fn new() -> Self {
        HbDetector {
            max_races: Self::DEFAULT_MAX_RACES,
            ..Default::default()
        }
    }

    /// A detector reporting at most `max_races` dynamic pairs.
    pub fn with_max_races(max_races: usize) -> Self {
        HbDetector {
            max_races,
            ..Default::default()
        }
    }

    fn clock_mut(&mut self, tid: ThreadId) -> &mut VectorClock {
        let idx = tid.index();
        if idx >= self.clocks.len() {
            self.clocks.resize_with(idx + 1, VectorClock::new);
        }
        &mut self.clocks[idx]
    }

    fn report(&mut self, loc: MemLoc, a: Epoch, a_write: bool, b: Epoch, b_write: bool) {
        if self.races.len() >= self.max_races {
            return;
        }
        let (first, second) = if a.gseq < b.gseq {
            (
                Access {
                    gseq: a.gseq,
                    tid: a.tid,
                    is_write: a_write,
                },
                Access {
                    gseq: b.gseq,
                    tid: b.tid,
                    is_write: b_write,
                },
            )
        } else {
            (
                Access {
                    gseq: b.gseq,
                    tid: b.tid,
                    is_write: b_write,
                },
                Access {
                    gseq: a.gseq,
                    tid: a.tid,
                    is_write: a_write,
                },
            )
        };
        self.races.push(RacePair { loc, first, second });
    }

    /// Feeds one event.
    pub fn observe(&mut self, event: &Event) {
        let tid = event.tid;
        // Tick first: every event is a distinct point in its thread.
        let c = self.clock_mut(tid);
        c.tick(tid);

        // Atomic RMWs synchronize through their cell (seq-cst semantics):
        // join the cell's clock before the race check so prior atomics are
        // ordered before this one.
        let is_atomic = matches!(event.op, Op::FetchAdd(..) | Op::CompareSwap(..));
        if is_atomic {
            if let Some(loc) = event.op.mem_location() {
                if let Some(ac) = self.atomics.get(&loc) {
                    let ac = ac.clone();
                    self.clock_mut(tid).join(&ac);
                }
            }
        }
        let my_clock = self.clock_mut(tid).clone();

        // Memory access checks (before any sync joins for this event —
        // accesses and sync ops are distinct ops, so ordering is moot).
        if let Some(loc) = event.op.mem_location() {
            let epoch = Epoch {
                tid,
                clock: my_clock.get(tid),
                gseq: event.gseq,
            };
            let is_write = event.op.is_mem_write();
            let st = self.locs.entry(loc).or_default();
            let mut pending: Vec<(Epoch, bool)> = Vec::new();
            if let Some(lw) = st.last_write {
                if lw.tid != tid && !lw.happens_before(&my_clock) {
                    pending.push((lw, true));
                }
            }
            if is_write {
                for r in &st.reads {
                    if r.tid != tid && !r.happens_before(&my_clock) {
                        pending.push((*r, false));
                    }
                }
                st.last_write = Some(epoch);
                st.reads.clear();
            } else {
                if let Some(pos) = st.reads.iter().position(|r| r.tid == tid) {
                    st.reads[pos] = epoch;
                } else {
                    st.reads.push(epoch);
                }
            }
            for (other, other_write) in pending {
                self.report(loc, other, other_write, epoch, is_write);
            }
            // Publish this atomic access's clock to the cell.
            if is_atomic {
                let snap = my_clock.clone();
                self.atomics
                    .entry(loc)
                    .and_modify(|ac| ac.join(&snap))
                    .or_insert(snap);
            }
        }

        // Synchronization edges.
        match &event.op {
            Op::LockAcquire(l) => {
                if let Some(lc) = self.locks.get(&l.0) {
                    let lc = lc.clone();
                    self.clock_mut(tid).join(&lc);
                }
            }
            Op::LockRelease(l) => {
                let c = self.clock_mut(tid).clone();
                self.locks
                    .entry(l.0)
                    .and_modify(|lc| lc.join(&c))
                    .or_insert(c);
            }
            Op::RwAcquireRead(rw) | Op::RwAcquireWrite(rw) => {
                if let Some(lc) = self.rwlocks.get(&rw.0) {
                    let lc = lc.clone();
                    self.clock_mut(tid).join(&lc);
                }
            }
            Op::RwRelease(rw) => {
                let c = self.clock_mut(tid).clone();
                self.rwlocks
                    .entry(rw.0)
                    .and_modify(|lc| lc.join(&c))
                    .or_insert(c);
            }
            Op::CondWait(c, l) => {
                // The wait releases the lock.
                let snap = self.clock_mut(tid).clone();
                self.locks
                    .entry(l.0)
                    .and_modify(|lc| lc.join(&snap))
                    .or_insert(snap);
                let _ = c;
            }
            Op::CondReacquire(c, l) => {
                // Wakeup: notified-by edge plus lock reacquisition.
                if let Some(cc) = self.conds.get(&c.0) {
                    let cc = cc.clone();
                    self.clock_mut(tid).join(&cc);
                }
                if let Some(lc) = self.locks.get(&l.0) {
                    let lc = lc.clone();
                    self.clock_mut(tid).join(&lc);
                }
            }
            Op::CondNotifyOne(c) | Op::CondNotifyAll(c) => {
                let snap = self.clock_mut(tid).clone();
                self.conds
                    .entry(c.0)
                    .and_modify(|cc| cc.join(&snap))
                    .or_insert(snap);
            }
            Op::BarrierWait(b) => {
                // Conservative bidirectional join (see module docs).
                let entry = self.barriers.entry(b.0).or_default();
                let merged = {
                    let mut m = entry.clone();
                    m.join(&my_clock);
                    m
                };
                *entry = merged.clone();
                self.clock_mut(tid).join(&merged);
            }
            Op::BarrierResume(b) => {
                if let Some(bc) = self.barriers.get(&b.0) {
                    let bc = bc.clone();
                    self.clock_mut(tid).join(&bc);
                }
            }
            Op::SemAcquire(s) => {
                if let Some(sc) = self.sems.get(&s.0) {
                    let sc = sc.clone();
                    self.clock_mut(tid).join(&sc);
                }
            }
            Op::SemRelease(s) => {
                let snap = self.clock_mut(tid).clone();
                self.sems
                    .entry(s.0)
                    .and_modify(|sc| sc.join(&snap))
                    .or_insert(snap);
            }
            Op::ChanSend(ch, _) => {
                let snap = self.clock_mut(tid).clone();
                self.chans.entry(ch.0).or_default().push_back(snap);
            }
            Op::ChanRecv(ch) => match &event.result {
                OpResult::MaybeValue(Some(_)) => {
                    if let Some(q) = self.chans.get_mut(&ch.0) {
                        if let Some(snap) = q.pop_front() {
                            self.clock_mut(tid).join(&snap);
                        }
                    }
                }
                _ => {
                    if let Some(cc) = self.chan_close.get(&ch.0) {
                        let cc = cc.clone();
                        self.clock_mut(tid).join(&cc);
                    }
                }
            },
            Op::ChanClose(ch) => {
                let snap = self.clock_mut(tid).clone();
                self.chan_close
                    .entry(ch.0)
                    .and_modify(|cc| cc.join(&snap))
                    .or_insert(snap);
            }
            Op::Spawn => {
                if let OpResult::Tid(child) = event.result {
                    let snap = self.clock_mut(tid).clone();
                    self.clock_mut(child).join(&snap);
                }
            }
            Op::Join(target) => {
                if let Some(ec) = self.exit_clocks.get(&target.0) {
                    let ec = ec.clone();
                    self.clock_mut(tid).join(&ec);
                }
            }
            Op::ThreadExit => {
                let snap = self.clock_mut(tid).clone();
                self.exit_clocks.insert(tid.0, snap);
            }
            _ => {}
        }
    }

    /// All dynamic races observed so far, in detection order.
    pub fn races(&self) -> &[RacePair] {
        &self.races
    }

    /// Consumes the detector, returning the races.
    pub fn into_races(self) -> Vec<RacePair> {
        self.races
    }

    /// The current vector clock of a thread (diagnostics).
    pub fn thread_clock(&self, tid: ThreadId) -> Option<&VectorClock> {
        self.clocks.get(tid.index())
    }
}

/// Runs the detector over a whole trace.
pub fn detect_races(trace: &Trace) -> Vec<RacePair> {
    detect_races_in(trace.events())
}

/// Runs the detector over a slice of events (e.g. the prefix before a
/// failure point).
pub fn detect_races_in(events: &[Event]) -> Vec<RacePair> {
    let mut det = HbDetector::new();
    for e in events {
        det.observe(e);
    }
    det.into_races()
}

/// Deduplicates dynamic races by [`RacePair::static_key`], keeping the
/// earliest occurrence of each.
pub fn dedup_static(races: &[RacePair]) -> Vec<RacePair> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for r in races {
        if seen.insert(r.static_key()) {
            out.push(*r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pres_tvm::prelude::*;

    /// Runs a program under the given seed with full tracing.
    fn traced(
        seed: u64,
        build: impl Fn(&mut ResourceSpec) -> Box<dyn FnOnce(&mut Ctx) + Send>,
    ) -> Trace {
        let mut spec = ResourceSpec::new();
        let body = build(&mut spec);
        let out = pres_tvm::vm::run(
            VmConfig {
                trace_mode: TraceMode::Full,
                ..VmConfig::default()
            },
            spec,
            &mut RandomScheduler::new(seed),
            &mut NullObserver,
            move |ctx| body(ctx),
        );
        assert!(
            matches!(out.status, RunStatus::Completed | RunStatus::Failed(_)),
            "{}",
            out.status
        );
        out.trace
    }

    #[test]
    fn unsynchronized_writes_race() {
        let trace = traced(1, |spec| {
            let x = spec.var("x", 0);
            Box::new(move |ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    ctx.write(x, 1);
                });
                ctx.write(x, 2);
                ctx.join(t);
            })
        });
        let races = detect_races(&trace);
        assert!(!races.is_empty(), "write-write race must be detected");
        assert!(races.iter().all(|r| r.first.is_write && r.second.is_write));
    }

    #[test]
    fn lock_protected_writes_do_not_race() {
        let trace = traced(2, |spec| {
            let x = spec.var("x", 0);
            let m = spec.lock("m");
            Box::new(move |ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    ctx.lock(m);
                    let v = ctx.read(x);
                    ctx.write(x, v + 1);
                    ctx.unlock(m);
                });
                ctx.lock(m);
                let v = ctx.read(x);
                ctx.write(x, v + 1);
                ctx.unlock(m);
                ctx.join(t);
            })
        });
        assert!(detect_races(&trace).is_empty());
    }

    #[test]
    fn spawn_and_join_order_accesses() {
        let trace = traced(3, |spec| {
            let x = spec.var("x", 0);
            Box::new(move |ctx| {
                ctx.write(x, 1); // before spawn: ordered
                let t = ctx.spawn("w", move |ctx| {
                    ctx.write(x, 2);
                });
                ctx.join(t);
                ctx.write(x, 3); // after join: ordered
            })
        });
        assert!(detect_races(&trace).is_empty());
    }

    #[test]
    fn read_write_race_is_detected_and_classified() {
        let trace = traced(4, |spec| {
            let x = spec.var("x", 0);
            Box::new(move |ctx| {
                let t = ctx.spawn("reader", move |ctx| {
                    for _ in 0..5 {
                        ctx.read(x);
                        ctx.compute(5);
                    }
                });
                for _ in 0..5 {
                    ctx.write(x, 7);
                    ctx.compute(5);
                }
                ctx.join(t);
            })
        });
        let races = detect_races(&trace);
        assert!(!races.is_empty());
        assert!(races
            .iter()
            .any(|r| r.first.is_write != r.second.is_write));
    }

    #[test]
    fn channel_send_recv_creates_order() {
        let trace = traced(5, |spec| {
            let x = spec.var("x", 0);
            let ch = spec.chan("q");
            Box::new(move |ctx| {
                let t = ctx.spawn("consumer", move |ctx| {
                    ctx.recv(ch);
                    ctx.write(x, 2); // ordered after producer's write
                });
                ctx.write(x, 1);
                ctx.send(ch, 0);
                ctx.join(t);
            })
        });
        assert!(detect_races(&trace).is_empty());
    }

    #[test]
    fn barrier_orders_cross_phase_accesses() {
        let trace = traced(6, |spec| {
            let x = spec.var_array("x", 2, 0);
            let bar = spec.barrier("b", 2);
            Box::new(move |ctx| {
                let other = VarId(x.0 + 1);
                let t = ctx.spawn("w", move |ctx| {
                    ctx.write(other, 1);
                    ctx.barrier_wait(bar);
                    ctx.read(x);
                });
                ctx.write(x, 1);
                ctx.barrier_wait(bar);
                ctx.read(other);
                ctx.join(t);
            })
        });
        assert!(detect_races(&trace).is_empty());
    }

    #[test]
    fn condvar_handoff_creates_order() {
        let trace = traced(7, |spec| {
            let x = spec.var("x", 0);
            let flag = spec.var("flag", 0);
            let m = spec.lock("m");
            let cv = spec.cond("cv");
            Box::new(move |ctx| {
                let t = ctx.spawn("waiter", move |ctx| {
                    ctx.lock(m);
                    while ctx.read(flag) == 0 {
                        ctx.cond_wait(cv, m);
                    }
                    ctx.unlock(m);
                    ctx.write(x, 2); // ordered after the producer's write
                });
                ctx.write(x, 1);
                ctx.lock(m);
                ctx.write(flag, 1);
                ctx.notify_one(cv);
                ctx.unlock(m);
                ctx.join(t);
            })
        });
        assert!(detect_races(&trace).is_empty());
    }

    #[test]
    fn racing_pair_gseqs_point_at_real_events() {
        let trace = traced(8, |spec| {
            let x = spec.var("x", 0);
            Box::new(move |ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    ctx.write(x, 1);
                });
                ctx.write(x, 2);
                ctx.join(t);
            })
        });
        for r in detect_races(&trace) {
            let a = trace.get(r.first.gseq).expect("gseq valid");
            let b = trace.get(r.second.gseq).expect("gseq valid");
            assert!(a.op.is_mem_access() && b.op.is_mem_access());
            assert_eq!(a.tid, r.first.tid);
            assert_eq!(b.tid, r.second.tid);
            assert!(r.first.gseq < r.second.gseq);
            assert_ne!(r.first.tid, r.second.tid);
        }
    }

    #[test]
    fn dedup_static_collapses_dynamic_repeats() {
        let trace = traced(9, |spec| {
            let x = spec.var("x", 0);
            Box::new(move |ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    for _ in 0..10 {
                        ctx.write(x, 1);
                        ctx.compute(3);
                    }
                });
                for _ in 0..10 {
                    ctx.write(x, 2);
                    ctx.compute(3);
                }
                ctx.join(t);
            })
        });
        let races = detect_races(&trace);
        let deduped = dedup_static(&races);
        assert!(deduped.len() <= races.len());
        assert!(deduped.len() <= 2, "one static pair expected, got {deduped:?}");
    }

    #[test]
    fn race_cap_is_respected() {
        let trace = traced(10, |spec| {
            let x = spec.var("x", 0);
            Box::new(move |ctx| {
                let t = ctx.spawn("w", move |ctx| {
                    for _ in 0..50 {
                        ctx.write(x, 1);
                    }
                });
                for _ in 0..50 {
                    ctx.write(x, 2);
                }
                ctx.join(t);
            })
        });
        let mut det = HbDetector::with_max_races(3);
        for e in trace.events() {
            det.observe(e);
        }
        assert!(det.races().len() <= 3);
    }
}
