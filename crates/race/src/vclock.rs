//! Vector clocks over virtual threads.
//!
//! The standard partial-order machinery: one logical clock per thread,
//! element-wise joins, and a happens-before comparison. Thread ids are the
//! dense ids allocated by `pres-tvm`, so a plain vector suffices.

use pres_tvm::ids::ThreadId;
use std::cmp::Ordering;

/// A vector clock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    entries: Vec<u32>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// The component for `tid`.
    pub fn get(&self, tid: ThreadId) -> u32 {
        self.entries.get(tid.index()).copied().unwrap_or(0)
    }

    fn grow_to(&mut self, idx: usize) {
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, 0);
        }
    }

    /// Sets the component for `tid`.
    pub fn set(&mut self, tid: ThreadId, value: u32) {
        self.grow_to(tid.index());
        self.entries[tid.index()] = value;
    }

    /// Increments `tid`'s component and returns the new value.
    pub fn tick(&mut self, tid: ThreadId) -> u32 {
        self.grow_to(tid.index());
        self.entries[tid.index()] += 1;
        self.entries[tid.index()]
    }

    /// Element-wise maximum with `other`.
    pub fn join(&mut self, other: &VectorClock) {
        self.grow_to(other.entries.len().saturating_sub(1));
        for (i, v) in other.entries.iter().enumerate() {
            if *v > self.entries[i] {
                self.entries[i] = *v;
            }
        }
    }

    /// Whether `self` happens-before-or-equals `other` (component-wise ≤).
    pub fn le(&self, other: &VectorClock) -> bool {
        self.entries
            .iter()
            .enumerate()
            .all(|(i, v)| *v <= other.entries.get(i).copied().unwrap_or(0))
    }

    /// Partial-order comparison: `None` means concurrent.
    pub fn partial_cmp_hb(&self, other: &VectorClock) -> Option<Ordering> {
        let le = self.le(other);
        let ge = other.le(self);
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    /// Whether the two clocks are concurrent (no HB order either way).
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        self.partial_cmp_hb(other).is_none()
    }
}

/// An epoch: one thread's scalar clock at an access, plus where it happened.
///
/// The FastTrack insight: a single (thread, clock) pair represents "the last
/// access" precisely when accesses are totally ordered, which covers the
/// common case; we additionally carry the global sequence number so race
/// reports can point at exact trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// The accessing thread.
    pub tid: ThreadId,
    /// That thread's clock component at the access.
    pub clock: u32,
    /// Global sequence number of the access event.
    pub gseq: u64,
}

impl Epoch {
    /// Whether this epoch happened-before the observer clock `vc`.
    pub fn happens_before(&self, vc: &VectorClock) -> bool {
        self.clock <= vc.get(self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn tick_and_get() {
        let mut vc = VectorClock::new();
        assert_eq!(vc.get(t(3)), 0);
        assert_eq!(vc.tick(t(3)), 1);
        assert_eq!(vc.tick(t(3)), 2);
        assert_eq!(vc.get(t(3)), 2);
        assert_eq!(vc.get(t(0)), 0);
    }

    #[test]
    fn join_is_elementwise_max() {
        let mut a = VectorClock::new();
        a.set(t(0), 5);
        a.set(t(1), 1);
        let mut b = VectorClock::new();
        b.set(t(1), 7);
        b.set(t(2), 2);
        a.join(&b);
        assert_eq!(a.get(t(0)), 5);
        assert_eq!(a.get(t(1)), 7);
        assert_eq!(a.get(t(2)), 2);
    }

    #[test]
    fn hb_comparison() {
        let mut a = VectorClock::new();
        a.set(t(0), 1);
        let mut b = a.clone();
        b.set(t(0), 2);
        assert_eq!(a.partial_cmp_hb(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp_hb(&a), Some(Ordering::Greater));
        assert_eq!(a.partial_cmp_hb(&a.clone()), Some(Ordering::Equal));
    }

    #[test]
    fn concurrent_clocks() {
        let mut a = VectorClock::new();
        a.set(t(0), 1);
        let mut b = VectorClock::new();
        b.set(t(1), 1);
        assert!(a.concurrent(&b));
        assert!(b.concurrent(&a));
        a.join(&b);
        assert!(!a.concurrent(&b));
    }

    #[test]
    fn le_handles_different_lengths() {
        let mut short = VectorClock::new();
        short.set(t(0), 1);
        let mut long = VectorClock::new();
        long.set(t(0), 1);
        long.set(t(5), 3);
        assert!(short.le(&long));
        assert!(!long.le(&short));
    }

    #[test]
    fn epoch_happens_before_observer() {
        let e = Epoch {
            tid: t(1),
            clock: 3,
            gseq: 10,
        };
        let mut vc = VectorClock::new();
        vc.set(t(1), 2);
        assert!(!e.happens_before(&vc));
        vc.set(t(1), 3);
        assert!(e.happens_before(&vc));
    }
}
