//! Happens-before edge coverage on tricky synchronization shapes: the
//! detector must stay silent where an edge exists (semaphores, channel
//! close, barrier generations, rwlocks, atomics) and speak where none
//! does — checked over many schedules, not one.

use pres_race::hb::detect_races;
use pres_race::lockset::check_lockset;
use pres_tvm::prelude::*;
use pres_tvm::state::ResourceSpec;

fn sweep(
    seeds: u64,
    build: impl Fn(&mut ResourceSpec) -> Box<dyn FnOnce(&mut Ctx) + Send>,
) -> (u64, u64) {
    let mut racy = 0;
    let mut clean = 0;
    for seed in 0..seeds {
        let mut spec = ResourceSpec::new();
        let body = build(&mut spec);
        let out = pres_tvm::vm::run(
            VmConfig {
                trace_mode: TraceMode::Full,
                ..VmConfig::default()
            },
            spec,
            &mut RandomScheduler::new(seed),
            &mut NullObserver,
            move |ctx| body(ctx),
        );
        assert_eq!(out.status, RunStatus::Completed, "seed {seed}: {}", out.status);
        if detect_races(&out.trace).is_empty() {
            clean += 1;
        } else {
            racy += 1;
        }
    }
    (clean, racy)
}

#[test]
fn semaphore_handoff_orders_the_protected_write() {
    // A binary semaphore used as a mutex: P/V brackets create HB edges.
    let (clean, racy) = sweep(15, |spec| {
        let s = spec.sem("mutex", 1);
        let x = spec.var("x", 0);
        Box::new(move |ctx| {
            let t = ctx.spawn("w", move |ctx| {
                ctx.sem_acquire(s);
                let v = ctx.read(x);
                ctx.write(x, v + 1);
                ctx.sem_release(s);
            });
            ctx.sem_acquire(s);
            let v = ctx.read(x);
            ctx.write(x, v + 1);
            ctx.sem_release(s);
            ctx.join(t);
        })
    });
    assert_eq!(racy, 0, "{clean} clean, {racy} racy");
}

#[test]
fn channel_close_orders_post_drain_accesses() {
    let (clean, racy) = sweep(15, |spec| {
        let ch = spec.chan("q");
        let x = spec.var("x", 0);
        Box::new(move |ctx| {
            let t = ctx.spawn("consumer", move |ctx| {
                while ctx.recv(ch).is_some() {}
                // Runs only after close: ordered after the producer's write.
                let v = ctx.read(x);
                ctx.write(x, v + 1);
            });
            ctx.write(x, 41);
            ctx.send(ch, 1);
            ctx.chan_close(ch);
            ctx.join(t);
        })
    });
    assert_eq!(racy, 0, "{clean} clean, {racy} racy");
}

#[test]
fn barrier_generations_order_both_directions() {
    let (clean, racy) = sweep(15, |spec| {
        let bar = spec.barrier("b", 2);
        let a = spec.var("a", 0);
        let b = spec.var("b", 0);
        Box::new(move |ctx| {
            let t = ctx.spawn("peer", move |ctx| {
                ctx.write(b, 1);
                ctx.barrier_wait(bar);
                let _ = ctx.read(a);
                ctx.barrier_wait(bar);
                ctx.write(b, 2);
            });
            ctx.write(a, 1);
            ctx.barrier_wait(bar);
            let _ = ctx.read(b);
            ctx.barrier_wait(bar);
            ctx.write(a, 2);
            ctx.join(t);
        })
    });
    assert_eq!(racy, 0, "{clean} clean, {racy} racy");
}

#[test]
fn rwlock_orders_writers_against_readers() {
    let (clean, racy) = sweep(15, |spec| {
        let rw = spec.rwlock("t");
        let x = spec.var("x", 0);
        Box::new(move |ctx| {
            let readers: Vec<ThreadId> = (0..2)
                .map(|i| {
                    ctx.spawn(&format!("r{i}"), move |ctx| {
                        for _ in 0..3 {
                            ctx.rw_read(rw);
                            let _ = ctx.read(x);
                            ctx.rw_unlock(rw);
                            ctx.compute(5);
                        }
                    })
                })
                .collect();
            for _ in 0..3 {
                ctx.rw_write(rw);
                let v = ctx.read(x);
                ctx.write(x, v + 1);
                ctx.rw_unlock(rw);
                ctx.compute(5);
            }
            for r in readers {
                ctx.join(r);
            }
        })
    });
    assert_eq!(racy, 0, "{clean} clean, {racy} racy");
}

#[test]
fn atomics_do_not_race_each_other_but_plain_reads_do() {
    // Two threads fetch_add a counter (no race); a third reads it plainly
    // (race with the atomic writers).
    let mut saw_plain_race = false;
    for seed in 0..30 {
        let mut spec = ResourceSpec::new();
        let c = spec.var("c", 0);
        let out = pres_tvm::vm::run(
            VmConfig {
                trace_mode: TraceMode::Full,
                ..VmConfig::default()
            },
            spec,
            &mut RandomScheduler::new(seed),
            &mut NullObserver,
            move |ctx| {
                let a = ctx.spawn("a", move |ctx| {
                    for _ in 0..5 {
                        ctx.fetch_add(c, 1);
                    }
                });
                let b = ctx.spawn("b", move |ctx| {
                    for _ in 0..5 {
                        ctx.fetch_add(c, 1);
                    }
                });
                let r = ctx.spawn("reader", move |ctx| {
                    for _ in 0..5 {
                        let _ = ctx.read(c); // unsynchronized plain read
                        ctx.compute(4);
                    }
                });
                ctx.join(a);
                ctx.join(b);
                ctx.join(r);
            },
        );
        let races = detect_races(&out.trace);
        // Atomic-atomic pairs must never be reported.
        for race in &races {
            let first = out.trace.get(race.first.gseq).unwrap();
            let second = out.trace.get(race.second.gseq).unwrap();
            let both_atomic = matches!(first.op, pres_tvm::op::Op::FetchAdd(..))
                && matches!(second.op, pres_tvm::op::Op::FetchAdd(..));
            assert!(!both_atomic, "atomic-atomic pair reported: {race:?}");
        }
        if !races.is_empty() {
            saw_plain_race = true;
        }
    }
    assert!(saw_plain_race, "plain read racing atomics never detected");
}

#[test]
fn lockset_and_hb_agree_on_the_clean_cases() {
    let (clean, racy) = sweep(10, |spec| {
        let m = spec.lock("m");
        let x = spec.var("x", 0);
        Box::new(move |ctx| {
            let t = ctx.spawn("w", move |ctx| {
                ctx.with_lock(m, |ctx| {
                    let v = ctx.read(x);
                    ctx.write(x, v + 1);
                });
            });
            ctx.with_lock(m, |ctx| {
                let v = ctx.read(x);
                ctx.write(x, v + 1);
            });
            ctx.join(t);
        })
    });
    assert_eq!(racy, 0, "{clean} clean");
    // Lockset agrees on a sample schedule.
    let mut spec = ResourceSpec::new();
    let m = spec.lock("m");
    let x = spec.var("x", 0);
    let out = pres_tvm::vm::run(
        VmConfig {
            trace_mode: TraceMode::Full,
            ..VmConfig::default()
        },
        spec,
        &mut RandomScheduler::new(3),
        &mut NullObserver,
        move |ctx| {
            let t = ctx.spawn("w", move |ctx| {
                ctx.with_lock(m, |ctx| {
                    let v = ctx.read(x);
                    ctx.write(x, v + 1);
                });
            });
            ctx.with_lock(m, |ctx| {
                let v = ctx.read(x);
                ctx.write(x, v + 1);
            });
            ctx.join(t);
        },
    );
    assert!(check_lockset(&out.trace).is_empty());
}
